package matrix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DVCCSC is delta-varint compressed sparse column: the CSC mirror of
// DVCSR, holding per column the first row index and then the strictly
// positive gaps to each subsequent row, all as unsigned varints in one
// contiguous byte stream. It is what the OP (outer-product) kernel's
// partition builder consumes when the resident row store is
// compressed, so the column side never materializes uncompressed CSC
// build scratch. Values, when present, are stored column-major so the
// k-th decoded element of the stream pairs with Val[k]; unit-weight
// graphs elide the array exactly like DVCSR. ChunkOff gives an
// absolute byte offset every ChunkCols columns for seekable decode.
type DVCCSC struct {
	R, C      int
	Ptr       []int32 // column element prefix, length C+1
	Data      []byte  // concatenated per-column delta-varint row streams
	ChunkCols int     // columns per ChunkOff entry
	ChunkOff  []int64 // byte offset of column j*ChunkCols's stream
	Val       []float32
	// Weighted records whether Val is present; when false every stored
	// element has value 1 and Val is nil.
	Weighted bool
}

// NNZ returns the number of stored elements.
func (d *DVCCSC) NNZ() int {
	if len(d.Ptr) != d.C+1 || d.C < 0 {
		return 0
	}
	return int(d.Ptr[d.C])
}

// Dims returns the matrix dimensions (rows, cols).
func (d *DVCCSC) Dims() (int, int) { return d.R, d.C }

// ResidentBytes is the measured footprint of the backing arrays.
func (d *DVCCSC) ResidentBytes() int64 {
	return int64(len(d.Data)) + 4*int64(len(d.Ptr)) + 8*int64(len(d.ChunkOff)) + 4*int64(len(d.Val))
}

// ColPrefix implements ColStore (the prefix is stored, not recomputed).
func (d *DVCCSC) ColPrefix() []int32 { return d.Ptr }

// EncodeDVCCSC builds the compressed column store directly from any
// row-major store in two streaming passes — counting pass for the
// per-column element and byte totals, placement pass writing each
// column's varints at its final offset — without materializing an
// uncompressed CSC (or COO) intermediate. Row-major decode order makes
// the per-column row indices arrive ascending, which is exactly the
// gap-positivity the encoding needs.
func EncodeDVCCSC(st Store) (*DVCCSC, error) {
	r, c := st.Dims()
	if r < 0 || c < 0 || r > math.MaxInt32 || c > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dvccsc: dimensions %dx%d outside 32-bit index space", r, c)
	}
	if st.NNZ() > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dvccsc: %d elements exceed 32-bit index space", st.NNZ())
	}
	d := &DVCCSC{
		R:         r,
		C:         c,
		Ptr:       make([]int32, c+1),
		ChunkCols: DefaultChunkRows,
	}
	prev := getInt32Scratch(c)
	for j := range prev {
		prev[j] = -1
	}
	bytesAt := getInt64Scratch(c + 1)
	for j := range bytesAt {
		bytesAt[j] = 0
	}
	weighted := false
	var encErr error
	st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		if encErr != nil {
			return
		}
		if col < 0 || int(col) >= c || row <= prev[col] {
			encErr = fmt.Errorf("matrix: dvccsc: stream not canonical at (%d,%d)", row, col)
			return
		}
		d.Ptr[col+1]++
		if prev[col] < 0 {
			bytesAt[col+1] += int64(uvarintLen(uint64(row)))
		} else {
			bytesAt[col+1] += int64(uvarintLen(uint64(row - prev[col])))
		}
		prev[col] = row
		if val != 1 {
			weighted = true
		}
	})
	if encErr != nil {
		putInt32Scratch(prev)
		putInt64Scratch(bytesAt)
		return nil, encErr
	}
	for j := 0; j < c; j++ {
		d.Ptr[j+1] += d.Ptr[j]
		bytesAt[j+1] += bytesAt[j]
	}
	nchunks := (c + d.ChunkCols - 1) / d.ChunkCols
	d.ChunkOff = make([]int64, nchunks)
	for ch := 0; ch < nchunks; ch++ {
		d.ChunkOff[ch] = bytesAt[ch*d.ChunkCols]
	}
	d.Data = make([]byte, bytesAt[c])
	d.Weighted = weighted
	if weighted {
		d.Val = make([]float32, st.NNZ())
	}
	// Placement pass: bytesAt and a copy of the element prefix become
	// per-column write cursors.
	vcur := getInt32Scratch(c)
	copy(vcur, d.Ptr[:c])
	for j := range prev {
		prev[j] = -1
	}
	var buf [binary.MaxVarintLen64]byte
	st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		var g uint64
		if prev[col] < 0 {
			g = uint64(row)
		} else {
			g = uint64(row - prev[col])
		}
		prev[col] = row
		n := binary.PutUvarint(buf[:], g)
		copy(d.Data[bytesAt[col]:], buf[:n])
		bytesAt[col] += int64(n)
		if weighted {
			d.Val[vcur[col]] = val
			vcur[col]++
		}
	})
	putInt32Scratch(prev)
	putInt32Scratch(vcur)
	putInt64Scratch(bytesAt)
	return d, nil
}

// Validate checks every structural invariant of the compressed stream,
// decoding it end to end with full bounds checks — the column-major
// mirror of DVCSR.Validate, and the screen every untrusted DVCCSC must
// pass before DecodeCols may be used.
func (d *DVCCSC) Validate() error {
	if d.R < 0 || d.C < 0 || d.R > math.MaxInt32 || d.C > math.MaxInt32 {
		return fmt.Errorf("matrix: dvccsc: dimensions %dx%d outside 32-bit index space", d.R, d.C)
	}
	if len(d.Ptr) != d.C+1 {
		return fmt.Errorf("matrix: dvccsc: ColPtr length %d, want %d", len(d.Ptr), d.C+1)
	}
	if d.Ptr[0] != 0 {
		return fmt.Errorf("matrix: dvccsc: ColPtr starts at %d, want 0", d.Ptr[0])
	}
	for j := 0; j < d.C; j++ {
		if d.Ptr[j] > d.Ptr[j+1] {
			return fmt.Errorf("matrix: dvccsc: ColPtr not monotone at column %d", j)
		}
	}
	nnz := int(d.Ptr[d.C])
	if nnz < 0 {
		return fmt.Errorf("matrix: dvccsc: negative element count %d", nnz)
	}
	if d.Weighted && len(d.Val) != nnz {
		return fmt.Errorf("matrix: dvccsc: %d values for %d elements", len(d.Val), nnz)
	}
	if !d.Weighted && len(d.Val) != 0 {
		return fmt.Errorf("matrix: dvccsc: unweighted stream carries %d values", len(d.Val))
	}
	if d.ChunkCols < 1 {
		return fmt.Errorf("matrix: dvccsc: ChunkCols %d, want >= 1", d.ChunkCols)
	}
	wantChunks := 0
	if d.C > 0 {
		wantChunks = (d.C + d.ChunkCols - 1) / d.ChunkCols
	}
	if len(d.ChunkOff) != wantChunks {
		return fmt.Errorf("matrix: dvccsc: %d chunk offsets, want %d", len(d.ChunkOff), wantChunks)
	}
	pos := 0
	for j := 0; j < d.C; j++ {
		if j%d.ChunkCols == 0 {
			if off := d.ChunkOff[j/d.ChunkCols]; off != int64(pos) {
				return fmt.Errorf("matrix: dvccsc: chunk %d offset %d, stream is at %d", j/d.ChunkCols, off, pos)
			}
		}
		var err error
		pos, err = d.scanCol(j, pos, nil)
		if err != nil {
			return err
		}
	}
	if pos != len(d.Data) {
		return fmt.Errorf("matrix: dvccsc: stream ends at byte %d, Data has %d", pos, len(d.Data))
	}
	return nil
}

// scanCol decodes column j's varint stream starting at byte pos,
// returning the position after the column. emit, when non-nil,
// receives each decoded row index. Every read is bounds-checked so
// hostile or truncated streams fail with an error, never a panic.
func (d *DVCCSC) scanCol(j, pos int, emit func(row int32)) (int, error) {
	count := int(d.Ptr[j+1] - d.Ptr[j])
	row := int64(-1)
	for k := 0; k < count; k++ {
		if pos >= len(d.Data) {
			return 0, fmt.Errorf("matrix: dvccsc: truncated stream in column %d (element %d of %d)", j, k, count)
		}
		v, n := binary.Uvarint(d.Data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("matrix: dvccsc: malformed varint in column %d at byte %d", j, pos)
		}
		pos += n
		if v > math.MaxInt32 {
			return 0, fmt.Errorf("matrix: dvccsc: varint %d in column %d outside 32-bit index space", v, j)
		}
		if row < 0 {
			row = int64(v)
		} else {
			if v == 0 {
				return 0, fmt.Errorf("matrix: dvccsc: zero row gap in column %d (duplicate row)", j)
			}
			row += int64(v)
		}
		if row >= int64(d.R) {
			return 0, fmt.Errorf("matrix: dvccsc: row %d in column %d outside %d rows", row, j, d.R)
		}
		if emit != nil {
			emit(int32(row))
		}
	}
	return pos, nil
}

// decodeRange streams the elements of columns [lo, hi) in column-major
// order with full bounds checking, seeking via the chunk index.
func (d *DVCCSC) decodeRange(lo, hi int32, emit func(row, col int32, val float32)) error {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > d.C {
		hi = int32(d.C)
	}
	if lo >= hi {
		return nil
	}
	if len(d.Ptr) != d.C+1 || d.ChunkCols < 1 {
		return fmt.Errorf("matrix: dvccsc: malformed header (ColPtr %d for %d columns, ChunkCols %d)", len(d.Ptr), d.C, d.ChunkCols)
	}
	chunk := int(lo) / d.ChunkCols
	if chunk >= len(d.ChunkOff) {
		return fmt.Errorf("matrix: dvccsc: column %d beyond the chunk index", lo)
	}
	off := d.ChunkOff[chunk]
	if off < 0 || off > int64(len(d.Data)) {
		return fmt.Errorf("matrix: dvccsc: chunk %d offset %d outside %d data bytes", chunk, off, len(d.Data))
	}
	pos := int(off)
	for j := chunk * d.ChunkCols; j < int(lo); j++ {
		var err error
		pos, err = d.scanCol(j, pos, nil)
		if err != nil {
			return err
		}
	}
	for j := int(lo); j < int(hi); j++ {
		col := int32(j)
		k := d.Ptr[j]
		if d.Weighted && (k < 0 || int(d.Ptr[j+1]) > len(d.Val)) {
			return fmt.Errorf("matrix: dvccsc: column %d elements [%d,%d) outside %d values", j, k, d.Ptr[j+1], len(d.Val))
		}
		var err error
		pos, err = d.scanCol(j, pos, func(row int32) {
			v := float32(1)
			if d.Weighted {
				v = d.Val[k]
			}
			k++
			emit(row, col, v)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// DecodeCols implements ColStore, streaming columns [lo, hi) in
// column-major, row-ascending order — the traversal the OP partition
// builder consumes. The store must be trusted (built by EncodeDVCCSC)
// or have passed Validate; corruption discovered mid-stream panics.
func (d *DVCCSC) DecodeCols(lo, hi int32, emit func(row, col int32, val float32)) {
	if err := d.decodeRange(lo, hi, emit); err != nil {
		panic(err)
	}
}

// ColStreamBytes returns the encoded byte length of every column — the
// per-column fetch sizes the decode-PE model charges when the OP
// kernel gathers frontier columns from the compressed stream.
func (d *DVCCSC) ColStreamBytes() []int32 {
	out := make([]int32, d.C)
	pos := 0
	for j := 0; j < d.C; j++ {
		next, err := d.scanCol(j, pos, nil)
		if err != nil {
			panic(err)
		}
		out[j] = int32(next - pos)
		pos = next
	}
	return out
}

// ToCSC materializes the uncompressed CSC, enforcing the stream
// invariants along the way; hostile streams error rather than panic,
// so it pairs with Validate in the fuzz harness.
func (d *DVCCSC) ToCSC() (*CSC, error) {
	if len(d.Ptr) != d.C+1 {
		return nil, fmt.Errorf("matrix: dvccsc: ColPtr length %d, want %d", len(d.Ptr), d.C+1)
	}
	nnz := d.NNZ()
	if nnz < 0 || (d.Weighted && len(d.Val) != nnz) {
		return nil, fmt.Errorf("matrix: dvccsc: inconsistent element count %d (%d values)", nnz, len(d.Val))
	}
	prealloc := nnz
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	out := &CSC{
		R:      d.R,
		C:      d.C,
		ColPtr: make([]int32, 0, d.C+1),
		Row:    make([]int32, 0, prealloc),
		Val:    make([]float32, 0, prealloc),
	}
	out.ColPtr = append(out.ColPtr, 0)
	cur := int32(0)
	err := d.decodeRange(0, int32(d.C), func(row, col int32, val float32) {
		for cur < col {
			out.ColPtr = append(out.ColPtr, int32(len(out.Row)))
			cur++
		}
		out.Row = append(out.Row, row)
		out.Val = append(out.Val, val)
	})
	if err != nil {
		return nil, err
	}
	for int(cur) < d.C {
		out.ColPtr = append(out.ColPtr, int32(len(out.Row)))
		cur++
	}
	if len(out.Val) != nnz {
		return nil, fmt.Errorf("matrix: dvccsc: decoded %d elements, ColPtr promises %d", len(out.Val), nnz)
	}
	return out, nil
}
