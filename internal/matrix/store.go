package matrix

import (
	"fmt"
	"strings"
)

// Format names a resident storage layout for a graph's matrix — the
// format seam behind which the engine consumes whatever layout the
// registration-time selector picked.
type Format int

const (
	// FormatCSR is the uncompressed baseline: the canonical row-major
	// COO triple store (value-bearing CSR stream), 12 bytes per edge.
	FormatCSR Format = iota
	// FormatDVCSR is delta-varint CSR: per-row column gaps encoded as
	// unsigned varints, values elided entirely for unit-weight graphs —
	// typically 1–3 bytes per edge on graph-shaped matrices.
	FormatDVCSR
)

// String returns the format's flag/metric/JSON spelling.
func (f Format) String() string {
	if f == FormatDVCSR {
		return "dvcsr"
	}
	return "csr"
}

// ParseFormat parses a concrete storage-format name. The empty string
// selects the CSR baseline. "auto" is not a concrete format; callers
// that accept it (registration, CLIs) resolve it via AutoSelect first.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "csr":
		return FormatCSR, nil
	case "dvcsr":
		return FormatDVCSR, nil
	}
	return 0, fmt.Errorf("matrix: unknown format %q (want \"csr\" or \"dvcsr\")", s)
}

// Store is the format seam: the resident storage of one sparse matrix,
// able to stream its elements back in the canonical row-major,
// column-ascending order the kernels traverse. Both the uncompressed
// COO baseline and compressed representations implement it; partition
// builders decode per-PE row chunks through DecodeRows into the exact
// operand stream NewCOO would have produced, which is what keeps
// algorithm results bit-identical across formats.
type Store interface {
	// Dims returns the matrix dimensions (rows, cols).
	Dims() (r, c int)
	// NNZ returns the number of stored elements.
	NNZ() int
	// Format names the storage layout.
	Format() Format
	// ResidentBytes is the measured steady-state footprint of this
	// store's backing arrays — the figure admission control charges.
	ResidentBytes() int64
	// RowPtr returns the CSR-style row prefix (length R+1). The slice
	// may be shared with the store; callers must not mutate it.
	RowPtr() []int32
	// DecodeRows streams the stored elements of rows [lo, hi) in
	// row-major, column-ascending order. The store must have been
	// built by a trusted encoder or validated first: corruption found
	// mid-stream panics (hostile inputs are screened by Validate at
	// the parse/build boundary, never handed to the kernels).
	DecodeRows(lo, hi int32, emit func(row, col int32, val float32))
	// ToCOO materializes the store as a canonical row-major COO matrix
	// (the store itself when it already is one).
	ToCOO() (*COO, error)
}

// Dims implements Store.
func (m *COO) Dims() (int, int) { return m.R, m.C }

// Format implements Store: COO is the uncompressed CSR-stream baseline.
func (m *COO) Format() Format { return FormatCSR }

// ResidentBytes implements Store: 12 bytes per stored element (row +
// col + val).
func (m *COO) ResidentBytes() int64 { return int64(m.NNZ()) * 12 }

// RowPtr implements Store, building the CSR-style row prefix.
func (m *COO) RowPtr() []int32 {
	ptr := make([]int32, m.R+1)
	for _, r := range m.Row {
		ptr[r+1]++
	}
	for i := 0; i < m.R; i++ {
		ptr[i+1] += ptr[i]
	}
	return ptr
}

// DecodeRows implements Store by scanning the stored row-major triples.
func (m *COO) DecodeRows(lo, hi int32, emit func(row, col int32, val float32)) {
	// The triples are row-major sorted; binary-search the range bounds.
	start := searchRow(m.Row, lo)
	end := searchRow(m.Row, hi)
	for k := start; k < end; k++ {
		emit(m.Row[k], m.Col[k], m.Val[k])
	}
}

// searchRow returns the first index whose row is >= r.
func searchRow(rows []int32, r int32) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ToCOO implements Store: the COO is already the canonical form.
func (m *COO) ToCOO() (*COO, error) { return m, nil }

// OutDegreesOf returns the out-degree of every source vertex (stored
// elements per column) for any store, decoding one full pass. For the
// COO baseline it is equivalent to COO.OutDegrees.
func OutDegreesOf(st Store) []int32 {
	if m, ok := st.(*COO); ok {
		return m.OutDegrees()
	}
	r, c := st.Dims()
	deg := make([]int32, c)
	st.DecodeRows(0, int32(r), func(_, col int32, _ float32) {
		deg[col]++
	})
	return deg
}

// CSCOf converts any store to compressed sparse column without
// materializing an intermediate COO: one decode pass counts the column
// populations, a second places the elements. Row-major decode order
// makes the per-column row indices come out ascending, exactly like
// COO.ToCSC.
func CSCOf(st Store) *CSC {
	if m, ok := st.(*COO); ok {
		return m.ToCSC()
	}
	r, c := st.Dims()
	out := &CSC{
		R:      r,
		C:      c,
		ColPtr: make([]int32, c+1),
		Row:    make([]int32, st.NNZ()),
		Val:    make([]float32, st.NNZ()),
	}
	st.DecodeRows(0, int32(r), func(_, col int32, _ float32) {
		out.ColPtr[col+1]++
	})
	for j := 0; j < c; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := make([]int32, c)
	copy(next, out.ColPtr[:c])
	st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		p := next[col]
		out.Row[p] = row
		out.Val[p] = val
		next[col] = p + 1
	})
	return out
}
