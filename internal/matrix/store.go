package matrix

import (
	"fmt"
	"strings"
	"sync"
)

// Format names a resident storage layout for a graph's matrix — the
// format seam behind which the engine consumes whatever layout the
// registration-time selector picked.
type Format int

const (
	// FormatCSR is the uncompressed baseline: the canonical row-major
	// COO triple store (value-bearing CSR stream), 12 bytes per edge.
	FormatCSR Format = iota
	// FormatDVCSR is delta-varint CSR: per-row column gaps encoded as
	// unsigned varints, values elided entirely for unit-weight graphs —
	// typically 1–3 bytes per edge on graph-shaped matrices.
	FormatDVCSR
	// FormatBBCSR is bitmap-block CSR: per-row populated 64-column
	// blocks as a varint block gap plus an occupancy bitmap — one bit
	// per element where DVCSR's gap varints cost a byte, so it wins on
	// near-dense tiles and loses on sparse scattered rows.
	FormatBBCSR
)

// String returns the format's flag/metric/JSON spelling.
func (f Format) String() string {
	switch f {
	case FormatDVCSR:
		return "dvcsr"
	case FormatBBCSR:
		return "bbcsr"
	}
	return "csr"
}

// ParseFormat parses a concrete storage-format name. The empty string
// selects the CSR baseline. "auto" is not a concrete format; callers
// that accept it (registration, CLIs) resolve it via AutoSelect first.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "csr":
		return FormatCSR, nil
	case "dvcsr":
		return FormatDVCSR, nil
	case "bbcsr":
		return FormatBBCSR, nil
	}
	return 0, fmt.Errorf("matrix: unknown format %q (want \"csr\", \"dvcsr\", or \"bbcsr\")", s)
}

// Store is the format seam: the resident storage of one sparse matrix,
// able to stream its elements back in the canonical row-major,
// column-ascending order the kernels traverse. Both the uncompressed
// COO baseline and compressed representations implement it; partition
// builders decode per-PE row chunks through DecodeRows into the exact
// operand stream NewCOO would have produced, which is what keeps
// algorithm results bit-identical across formats.
type Store interface {
	// Dims returns the matrix dimensions (rows, cols).
	Dims() (r, c int)
	// NNZ returns the number of stored elements.
	NNZ() int
	// Format names the storage layout.
	Format() Format
	// ResidentBytes is the measured steady-state footprint of this
	// store's backing arrays — the figure admission control charges.
	ResidentBytes() int64
	// RowPtr returns the CSR-style row prefix (length R+1). The slice
	// may be shared with the store; callers must not mutate it.
	RowPtr() []int32
	// DecodeRows streams the stored elements of rows [lo, hi) in
	// row-major, column-ascending order. The store must have been
	// built by a trusted encoder or validated first: corruption found
	// mid-stream panics (hostile inputs are screened by Validate at
	// the parse/build boundary, never handed to the kernels).
	DecodeRows(lo, hi int32, emit func(row, col int32, val float32))
	// ToCOO materializes the store as a canonical row-major COO matrix
	// (the store itself when it already is one).
	ToCOO() (*COO, error)
}

// Dims implements Store.
func (m *COO) Dims() (int, int) { return m.R, m.C }

// Format implements Store: COO is the uncompressed CSR-stream baseline.
func (m *COO) Format() Format { return FormatCSR }

// ResidentBytes implements Store: 12 bytes per stored element (row +
// col + val).
func (m *COO) ResidentBytes() int64 { return int64(m.NNZ()) * 12 }

// RowPtr implements Store, building the CSR-style row prefix.
func (m *COO) RowPtr() []int32 {
	ptr := make([]int32, m.R+1)
	for _, r := range m.Row {
		ptr[r+1]++
	}
	for i := 0; i < m.R; i++ {
		ptr[i+1] += ptr[i]
	}
	return ptr
}

// DecodeRows implements Store by scanning the stored row-major triples.
func (m *COO) DecodeRows(lo, hi int32, emit func(row, col int32, val float32)) {
	// The triples are row-major sorted; binary-search the range bounds.
	start := searchRow(m.Row, lo)
	end := searchRow(m.Row, hi)
	for k := start; k < end; k++ {
		emit(m.Row[k], m.Col[k], m.Val[k])
	}
}

// searchRow returns the first index whose row is >= r.
func searchRow(rows []int32, r int32) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ToCOO implements Store: the COO is already the canonical form.
func (m *COO) ToCOO() (*COO, error) { return m, nil }

// OutDegreesOf returns the out-degree of every source vertex (stored
// elements per column) for any store, decoding one full pass. For the
// COO baseline it is equivalent to COO.OutDegrees.
func OutDegreesOf(st Store) []int32 {
	if m, ok := st.(*COO); ok {
		return m.OutDegrees()
	}
	r, c := st.Dims()
	deg := make([]int32, c)
	st.DecodeRows(0, int32(r), func(_, col int32, _ float32) {
		deg[col]++
	})
	return deg
}

// CSCOf converts any store to compressed sparse column without
// materializing an intermediate COO: one decode pass counts the column
// populations, a second places the elements. Row-major decode order
// makes the per-column row indices come out ascending, exactly like
// COO.ToCSC.
func CSCOf(st Store) *CSC {
	if m, ok := st.(*COO); ok {
		return m.ToCSC()
	}
	r, c := st.Dims()
	out := &CSC{
		R:      r,
		C:      c,
		ColPtr: make([]int32, c+1),
		Row:    make([]int32, st.NNZ()),
		Val:    make([]float32, st.NNZ()),
	}
	st.DecodeRows(0, int32(r), func(_, col int32, _ float32) {
		out.ColPtr[col+1]++
	})
	for j := 0; j < c; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := getInt32Scratch(c)
	copy(next, out.ColPtr[:c])
	st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		p := next[col]
		out.Row[p] = row
		out.Val[p] = val
		next[col] = p + 1
	})
	putInt32Scratch(next)
	return out
}

// ColStore is the column-major side of the format seam: the resident
// storage the OP (pull) kernel's partition builder consumes, streaming
// elements in column-major, row-ascending order. The uncompressed CSC
// and the compressed DVCCSC both implement it.
type ColStore interface {
	// Dims returns the matrix dimensions (rows, cols).
	Dims() (r, c int)
	// NNZ returns the number of stored elements.
	NNZ() int
	// ResidentBytes is the measured steady-state footprint of this
	// store's backing arrays.
	ResidentBytes() int64
	// ColPrefix returns the CSC-style column prefix (length C+1). The
	// slice may be shared with the store; callers must not mutate it.
	ColPrefix() []int32
	// DecodeCols streams the stored elements of columns [lo, hi) in
	// column-major, row-ascending order. Trusted-store corruption
	// panics, exactly like Store.DecodeRows.
	DecodeCols(lo, hi int32, emit func(row, col int32, val float32))
}

// Dims implements ColStore.
func (m *CSC) Dims() (int, int) { return m.R, m.C }

// ResidentBytes implements ColStore: 8 bytes per stored element plus
// the column prefix.
func (m *CSC) ResidentBytes() int64 {
	return 4*int64(len(m.ColPtr)) + 4*int64(len(m.Row)) + 4*int64(len(m.Val))
}

// ColPrefix implements ColStore.
func (m *CSC) ColPrefix() []int32 { return m.ColPtr }

// DecodeCols implements ColStore by walking the stored column slices.
func (m *CSC) DecodeCols(lo, hi int32, emit func(row, col int32, val float32)) {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > m.C {
		hi = int32(m.C)
	}
	for j := lo; j < hi; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			emit(m.Row[p], j, m.Val[p])
		}
	}
}

// ColStoreOf builds the column-major store the OP kernel partitions
// from: uncompressed row stores convert to plain CSC, compressed ones
// re-encode into DVCCSC so the column side stays in the compressed
// domain end to end (no uncompressed CSC scratch for a compressed
// resident graph).
func ColStoreOf(st Store) ColStore {
	if st.Format() == FormatCSR {
		return CSCOf(st)
	}
	cs, err := EncodeDVCCSC(st)
	if err != nil {
		// Impossible for a trusted store: dimensions and element counts
		// were 32-bit-screened when the store was built.
		panic(err)
	}
	return cs
}

// TransposeOf returns the transposed matrix in canonical COO form,
// streaming two decode passes (count, place) instead of materializing
// the source as COO first — the counting placement is stable and the
// row-major decode order makes transposed rows come out column-sorted,
// so the result is bit-identical to ToCOO().Transpose() at roughly a
// third of the peak memory for compressed stores.
func TransposeOf(st Store) *COO {
	if m, ok := st.(*COO); ok {
		return m.Transpose()
	}
	r, c := st.Dims()
	nnz := st.NNZ()
	out := &COO{
		R:   c,
		C:   r,
		Row: make([]int32, nnz),
		Col: make([]int32, nnz),
		Val: make([]float32, nnz),
	}
	ptr := make([]int32, c+1)
	st.DecodeRows(0, int32(r), func(_, col int32, _ float32) {
		ptr[col+1]++
	})
	for j := 0; j < c; j++ {
		ptr[j+1] += ptr[j]
	}
	next := getInt32Scratch(c)
	copy(next, ptr[:c])
	st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		p := next[col]
		out.Row[p] = col
		out.Col[p] = row
		out.Val[p] = val
		next[col] = p + 1
	})
	putInt32Scratch(next)
	return out
}

// weightedOf reports whether any stored value differs from 1 (i.e.
// whether a compressed encoding must carry the value array). The
// compressed stores answer from their header without decoding.
func weightedOf(st Store) bool {
	switch s := st.(type) {
	case *COO:
		for _, v := range s.Val {
			if v != 1 {
				return true
			}
		}
		return false
	case *DVCSR:
		return s.Weighted
	case *BBCSR:
		return s.Weighted
	}
	r, _ := st.Dims()
	weighted := false
	st.DecodeRows(0, int32(r), func(_, _ int32, v float32) {
		if v != 1 {
			weighted = true
		}
	})
	return weighted
}

// int32Scratch and int64Scratch pool the per-column fill cursors the
// conversion paths (CSCOf, ToCSC, TransposeOf, EncodeDVCCSC) burn
// through: these run on the engine-build retry path under memory
// pressure, where a fresh O(C) allocation per attempt is exactly the
// wrong time to allocate. Callers must overwrite the returned slice
// before reading it — pooled contents are stale.
var (
	int32Scratch sync.Pool
	int64Scratch sync.Pool
)

func getInt32Scratch(n int) []int32 {
	if p, _ := int32Scratch.Get().(*[]int32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}

func putInt32Scratch(s []int32) {
	if cap(s) > 0 {
		int32Scratch.Put(&s)
	}
}

func getInt64Scratch(n int) []int64 {
	if p, _ := int64Scratch.Get().(*[]int64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int64, n)
}

func putInt64Scratch(s []int64) {
	if cap(s) > 0 {
		int64Scratch.Put(&s)
	}
}
