package matrix

import (
	"fmt"
	"sort"
)

// Dense is a dense vector: one value per vertex. The IP kernel consumes
// and produces Dense frontiers.
type Dense []float32

// SparseVec is the (index, value) tuple representation the paper's OP
// kernel consumes (§III-A). Idx is sorted ascending with no duplicates.
type SparseVec struct {
	N   int // logical length
	Idx []int32
	Val []float32
}

// NNZ returns the number of stored (explicit) entries.
func (v *SparseVec) NNZ() int { return len(v.Idx) }

// Density returns NNZ/N, the quantity the CoSPARSE decision tree keys on.
func (v *SparseVec) Density() float64 {
	if v.N == 0 {
		return 0
	}
	return float64(v.NNZ()) / float64(v.N)
}

// Validate checks the SparseVec invariants.
func (v *SparseVec) Validate() error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("matrix: SparseVec slice lengths disagree: %d/%d", len(v.Idx), len(v.Val))
	}
	for k, i := range v.Idx {
		if i < 0 || int(i) >= v.N {
			return fmt.Errorf("matrix: SparseVec index %d out of range [0,%d)", i, v.N)
		}
		if k > 0 && i <= v.Idx[k-1] {
			return fmt.Errorf("matrix: SparseVec indices not strictly ascending at %d", k)
		}
	}
	return nil
}

// NewSparseVec builds a sparse vector from unsorted (index, value)
// pairs, sorting and rejecting duplicates or out-of-range indices.
func NewSparseVec(n int, idx []int32, val []float32) (*SparseVec, error) {
	if len(idx) != len(val) {
		return nil, fmt.Errorf("matrix: NewSparseVec: %d indices but %d values", len(idx), len(val))
	}
	type pair struct {
		i int32
		v float32
	}
	pairs := make([]pair, len(idx))
	for k := range idx {
		pairs[k] = pair{idx[k], val[k]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	out := &SparseVec{N: n, Idx: make([]int32, 0, len(idx)), Val: make([]float32, 0, len(idx))}
	for k, p := range pairs {
		if p.i < 0 || int(p.i) >= n {
			return nil, fmt.Errorf("matrix: NewSparseVec: index %d out of range [0,%d)", p.i, n)
		}
		if k > 0 && p.i == pairs[k-1].i {
			return nil, fmt.Errorf("matrix: NewSparseVec: duplicate index %d", p.i)
		}
		out.Idx = append(out.Idx, p.i)
		out.Val = append(out.Val, p.v)
	}
	return out, nil
}

// ToDense scatters the sparse vector into a dense one, with `fill` in
// the implicit positions. Graph semirings use their identity (e.g. +Inf
// for min-plus) as fill, not necessarily zero.
func (v *SparseVec) ToDense(fill float32) Dense {
	d := make(Dense, v.N)
	for i := range d {
		d[i] = fill
	}
	for k, i := range v.Idx {
		d[i] = v.Val[k]
	}
	return d
}

// Sparsify gathers the entries of d that differ from `fill` into a
// sparse vector. This is the dense→sparse conversion the runtime
// performs when switching from IP to OP (§III-D2).
func Sparsify(d Dense, fill float32) *SparseVec {
	out := &SparseVec{N: len(d)}
	for i, x := range d {
		if x != fill {
			out.Idx = append(out.Idx, int32(i))
			out.Val = append(out.Val, x)
		}
	}
	return out
}

// DenseDensity returns the fraction of entries of d that differ from fill.
func DenseDensity(d Dense, fill float32) float64 {
	if len(d) == 0 {
		return 0
	}
	nnz := 0
	for _, x := range d {
		if x != fill {
			nnz++
		}
	}
	return float64(nnz) / float64(len(d))
}

// Clone returns a copy of the dense vector.
func (d Dense) Clone() Dense {
	out := make(Dense, len(d))
	copy(out, d)
	return out
}

// Clone returns a deep copy of the sparse vector.
func (v *SparseVec) Clone() *SparseVec {
	out := &SparseVec{N: v.N, Idx: make([]int32, len(v.Idx)), Val: make([]float32, len(v.Val))}
	copy(out.Idx, v.Idx)
	copy(out.Val, v.Val)
	return out
}
