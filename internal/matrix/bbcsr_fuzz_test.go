package matrix

import (
	"encoding/binary"
	"testing"

	"cosparse/internal/rng"
)

// FuzzBBCSRDecode throws hostile bytes at the BBCSR screen: an
// arbitrary header plus raw (block gap, bitmap) stream must never panic
// or overflow in Validate or ToCOO, and any stream Validate accepts
// must decode to a matrix that itself validates and re-encodes to the
// identical bytes. The header slices are reconstructed from
// fuzzer-controlled bytes so every structural invariant is attackable.
func FuzzBBCSRDecode(f *testing.F) {
	seedCase := func(rows, cols, n int, unit bool, seed uint64) []byte {
		r := rng.New(seed)
		var elems []Coord
		if unit {
			elems = unitCoords(r, rows, cols, n)
		} else {
			elems = randomCoords(r, rows, cols, n)
		}
		b, err := EncodeBBCSR(MustCOO(rows, cols, elems))
		if err != nil {
			f.Fatal(err)
		}
		var hdr []byte
		for _, p := range b.Ptr {
			hdr = binary.AppendVarint(hdr, int64(p))
		}
		var off []byte
		for _, o := range b.ChunkOff {
			off = binary.AppendVarint(off, o)
		}
		in := binary.AppendUvarint(nil, uint64(b.R))
		in = binary.AppendUvarint(in, uint64(b.C))
		in = binary.AppendUvarint(in, uint64(b.ChunkRows))
		in = binary.AppendUvarint(in, uint64(len(hdr)))
		in = append(in, hdr...)
		in = binary.AppendUvarint(in, uint64(len(off)))
		in = append(in, off...)
		w := byte(0)
		if b.Weighted {
			w = 1
		}
		in = append(in, w)
		return append(in, b.Data...)
	}
	f.Add(seedCase(3, 500, 40, false, 1))
	f.Add(seedCase(700, 700, 900, true, 2))
	f.Add(seedCase(5, 63, 80, true, 3))
	f.Add([]byte{0, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, in []byte) {
		readUvarint := func() (uint64, bool) {
			v, n := binary.Uvarint(in)
			if n <= 0 {
				return 0, false
			}
			in = in[n:]
			return v, true
		}
		r, ok := readUvarint()
		if !ok {
			return
		}
		c, ok := readUvarint()
		if !ok {
			return
		}
		chunkRows, ok := readUvarint()
		if !ok {
			return
		}
		b := &BBCSR{R: int(r % 2048), C: int(c % 4096), ChunkRows: int(chunkRows % 512)}
		hdrLen, ok := readUvarint()
		if !ok || hdrLen > uint64(len(in)) {
			return
		}
		hdr := in[:hdrLen]
		in = in[hdrLen:]
		for len(hdr) > 0 {
			v, n := binary.Varint(hdr)
			if n <= 0 {
				return
			}
			hdr = hdr[n:]
			b.Ptr = append(b.Ptr, int32(v))
		}
		offLen, ok := readUvarint()
		if !ok || offLen > uint64(len(in)) {
			return
		}
		off := in[:offLen]
		in = in[offLen:]
		for len(off) > 0 {
			v, n := binary.Varint(off)
			if n <= 0 {
				return
			}
			off = off[n:]
			b.ChunkOff = append(b.ChunkOff, v)
		}
		if len(in) == 0 {
			return
		}
		weighted := in[0] != 0
		b.Data = in[1:]
		if weighted && len(b.Ptr) == b.R+1 && b.R >= 0 {
			if nnz := b.Ptr[b.R]; nnz >= 0 && nnz < 1<<16 {
				b.Weighted = true
				b.Val = make([]float32, nnz)
				for i := range b.Val {
					b.Val[i] = float32(i%7) + 0.5
				}
			}
		}

		// ToCOO must be hostile-safe with or without the Validate screen.
		if _, err := b.ToCOO(); err != nil && b.Validate() == nil {
			t.Fatalf("Validate accepted a stream ToCOO rejects: %v", err)
		}
		if err := b.Validate(); err != nil {
			return
		}
		m, err := b.ToCOO()
		if err != nil {
			t.Fatalf("validated stream failed to decode: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded matrix invalid: %v", err)
		}
		re, err := EncodeBBCSR(m)
		if err != nil {
			t.Fatalf("decoded matrix failed to re-encode: %v", err)
		}
		if string(re.Data) != string(b.Data) {
			t.Fatalf("re-encode differs: %d bytes vs %d", len(re.Data), len(b.Data))
		}
		if re.NNZ() != b.NNZ() {
			t.Fatalf("re-encode nnz %d, want %d", re.NNZ(), b.NNZ())
		}
	})
}
