// Package matrix implements the sparse-matrix and vector storage
// substrate used throughout CoSPARSE.
//
// The paper (§III-A, §III-D2) keeps two copies of the adjacency matrix
// resident — row-major COO for the inner-product (IP) kernel and CSC
// for the outer-product (OP) kernel — so that per-iteration software
// reconfiguration never pays a matrix conversion. This package provides
// those formats, CSR for the CPU baselines, dense and sparse vectors
// for the frontier, and the conversions between all of them.
//
// Conventions: a matrix has R rows and C columns; element (i, j) of the
// adjacency matrix of a graph means an edge from vertex j (source) to
// vertex i (destination), i.e. the matrix is already the transpose
// G.T that the paper's SpMV abstraction f_next = SpMV(G.T, f) consumes.
// Values are float32 — one 4-byte machine word of the modelled
// hardware.
package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Coord is a single (row, col, value) triple. Generators produce
// []Coord which is then packed into the compressed formats.
type Coord struct {
	Row, Col int32
	Val      float32
}

// COO is a coordinate-format sparse matrix sorted row-major
// (by Row, then Col). This is the storage the IP kernel streams.
type COO struct {
	R, C int
	Row  []int32
	Col  []int32
	Val  []float32
}

// CSR is compressed sparse row. RowPtr has length R+1.
type CSR struct {
	R, C   int
	RowPtr []int32
	Col    []int32
	Val    []float32
}

// CSC is compressed sparse column. ColPtr has length C+1. Row indices
// within a column are sorted ascending — the OP merge kernel depends on
// this invariant.
type CSC struct {
	R, C   int
	ColPtr []int32
	Row    []int32
	Val    []float32
}

// NNZ returns the number of stored elements.
func (m *COO) NNZ() int { return len(m.Val) }

// NNZ returns the number of stored elements.
func (m *CSR) NNZ() int { return len(m.Val) }

// NNZ returns the number of stored elements.
func (m *CSC) NNZ() int { return len(m.Val) }

// Density returns NNZ / (R*C).
func (m *COO) Density() float64 {
	if m.R == 0 || m.C == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.R) * float64(m.C))
}

// NewCOO builds a row-major-sorted, deduplicated COO matrix from
// coordinate triples. Duplicate (row, col) entries are combined by
// addition, matching the usual sparse-assembly semantics. It returns an
// error if any coordinate is out of range.
func NewCOO(r, c int, elems []Coord) (*COO, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("matrix: negative dimension %dx%d", r, c)
	}
	// Row/Col/RowPtr are int32 throughout the kernels; anything past
	// MaxInt32 would wrap silently in the compressed prefixes.
	if r > math.MaxInt32 || c > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dimensions %dx%d outside 32-bit index space", r, c)
	}
	if len(elems) > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: %d elements exceed 32-bit index space", len(elems))
	}
	for _, e := range elems {
		if e.Row < 0 || int(e.Row) >= r || e.Col < 0 || int(e.Col) >= c {
			return nil, fmt.Errorf("matrix: coordinate (%d,%d) outside %dx%d", e.Row, e.Col, r, c)
		}
	}
	sorted := make([]Coord, len(elems))
	copy(sorted, elems)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &COO{R: r, C: c}
	for _, e := range sorted {
		n := len(m.Row)
		if n > 0 && m.Row[n-1] == e.Row && m.Col[n-1] == e.Col {
			m.Val[n-1] += e.Val
			continue
		}
		m.Row = append(m.Row, e.Row)
		m.Col = append(m.Col, e.Col)
		m.Val = append(m.Val, e.Val)
	}
	return m, nil
}

// MustCOO is NewCOO that panics on error; for tests and generators
// whose inputs are constructed in-range.
func MustCOO(r, c int, elems []Coord) *COO {
	m, err := NewCOO(r, c, elems)
	if err != nil {
		panic(err)
	}
	return m
}

// Validate checks the COO invariants: in-range coordinates, row-major
// sort order, no duplicates, consistent slice lengths.
func (m *COO) Validate() error {
	if len(m.Row) != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("matrix: COO slice lengths disagree: %d/%d/%d", len(m.Row), len(m.Col), len(m.Val))
	}
	if m.R > math.MaxInt32 || m.C > math.MaxInt32 {
		return fmt.Errorf("matrix: dimensions %dx%d outside 32-bit index space", m.R, m.C)
	}
	if len(m.Val) > math.MaxInt32 {
		return fmt.Errorf("matrix: %d elements exceed 32-bit index space", len(m.Val))
	}
	for k := range m.Row {
		if m.Row[k] < 0 || int(m.Row[k]) >= m.R || m.Col[k] < 0 || int(m.Col[k]) >= m.C {
			return fmt.Errorf("matrix: element %d at (%d,%d) outside %dx%d", k, m.Row[k], m.Col[k], m.R, m.C)
		}
		if k > 0 {
			if m.Row[k] < m.Row[k-1] || (m.Row[k] == m.Row[k-1] && m.Col[k] <= m.Col[k-1]) {
				return fmt.Errorf("matrix: COO not strictly row-major at element %d", k)
			}
		}
	}
	return nil
}

// ToCSR converts to compressed sparse row.
func (m *COO) ToCSR() *CSR {
	out := &CSR{
		R:      m.R,
		C:      m.C,
		RowPtr: make([]int32, m.R+1),
		Col:    make([]int32, m.NNZ()),
		Val:    make([]float32, m.NNZ()),
	}
	for _, r := range m.Row {
		out.RowPtr[r+1]++
	}
	for i := 0; i < m.R; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	// COO is already row-major sorted, so a straight copy preserves
	// per-row column order.
	copy(out.Col, m.Col)
	copy(out.Val, m.Val)
	return out
}

// ToCSC converts to compressed sparse column. Row indices within each
// column come out ascending because the COO input is row-major sorted
// and the counting placement is stable.
func (m *COO) ToCSC() *CSC {
	out := &CSC{
		R:      m.R,
		C:      m.C,
		ColPtr: make([]int32, m.C+1),
		Row:    make([]int32, m.NNZ()),
		Val:    make([]float32, m.NNZ()),
	}
	for _, c := range m.Col {
		out.ColPtr[c+1]++
	}
	for j := 0; j < m.C; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	next := make([]int32, m.C)
	copy(next, out.ColPtr[:m.C])
	for k := range m.Val {
		c := m.Col[k]
		p := next[c]
		out.Row[p] = m.Row[k]
		out.Val[p] = m.Val[k]
		next[c] = p + 1
	}
	return out
}

// ToCOO converts CSR back to row-major COO.
func (m *CSR) ToCOO() *COO {
	out := &COO{
		R:   m.R,
		C:   m.C,
		Row: make([]int32, m.NNZ()),
		Col: make([]int32, m.NNZ()),
		Val: make([]float32, m.NNZ()),
	}
	for i := 0; i < m.R; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Row[p] = int32(i)
			out.Col[p] = m.Col[p]
			out.Val[p] = m.Val[p]
		}
	}
	return out
}

// ToCOO converts CSC to row-major COO (requires a sort by row).
func (m *CSC) ToCOO() *COO {
	elems := make([]Coord, 0, m.NNZ())
	for j := 0; j < m.C; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			elems = append(elems, Coord{Row: m.Row[p], Col: int32(j), Val: m.Val[p]})
		}
	}
	out, err := NewCOO(m.R, m.C, elems)
	if err != nil {
		panic(err) // impossible: coordinates come from a valid CSC
	}
	return out
}

// Validate checks CSC invariants: monotone ColPtr covering all
// elements, in-range ascending row indices per column.
func (m *CSC) Validate() error {
	if len(m.ColPtr) != m.C+1 {
		return fmt.Errorf("matrix: CSC ColPtr length %d, want %d", len(m.ColPtr), m.C+1)
	}
	if m.ColPtr[0] != 0 || int(m.ColPtr[m.C]) != m.NNZ() {
		return fmt.Errorf("matrix: CSC ColPtr endpoints %d..%d, want 0..%d", m.ColPtr[0], m.ColPtr[m.C], m.NNZ())
	}
	for j := 0; j < m.C; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("matrix: CSC ColPtr not monotone at column %d", j)
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if m.Row[p] < 0 || int(m.Row[p]) >= m.R {
				return fmt.Errorf("matrix: CSC row %d out of range in column %d", m.Row[p], j)
			}
			if p > m.ColPtr[j] && m.Row[p] <= m.Row[p-1] {
				return fmt.Errorf("matrix: CSC rows not ascending in column %d", j)
			}
		}
	}
	return nil
}

// Validate checks CSR invariants.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.R+1 {
		return fmt.Errorf("matrix: CSR RowPtr length %d, want %d", len(m.RowPtr), m.R+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.R]) != m.NNZ() {
		return fmt.Errorf("matrix: CSR RowPtr endpoints %d..%d, want 0..%d", m.RowPtr[0], m.RowPtr[m.R], m.NNZ())
	}
	for i := 0; i < m.R; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("matrix: CSR RowPtr not monotone at row %d", i)
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.Col[p] < 0 || int(m.Col[p]) >= m.C {
				return fmt.Errorf("matrix: CSR col %d out of range in row %d", m.Col[p], i)
			}
			if p > m.RowPtr[i] && m.Col[p] <= m.Col[p-1] {
				return fmt.Errorf("matrix: CSR cols not ascending in row %d", i)
			}
		}
	}
	return nil
}

// OutDegrees returns, for the adjacency interpretation (element (i,j) =
// edge j→i), the out-degree of every source vertex, i.e. the number of
// stored elements per column. PageRank's Matrix_Op divides by this.
func (m *COO) OutDegrees() []int32 {
	deg := make([]int32, m.C)
	for _, c := range m.Col {
		deg[c]++
	}
	return deg
}

// RowNNZ returns the number of stored elements in each row.
func (m *COO) RowNNZ() []int32 {
	cnt := make([]int32, m.R)
	for _, r := range m.Row {
		cnt[r]++
	}
	return cnt
}

// Transpose returns the transposed matrix in COO form.
func (m *COO) Transpose() *COO {
	elems := make([]Coord, m.NNZ())
	for k := range m.Val {
		elems[k] = Coord{Row: m.Col[k], Col: m.Row[k], Val: m.Val[k]}
	}
	out, err := NewCOO(m.C, m.R, elems)
	if err != nil {
		panic(err) // impossible: coordinates come from a valid COO
	}
	return out
}
