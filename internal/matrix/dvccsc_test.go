package matrix

import (
	"strings"
	"testing"

	"cosparse/internal/rng"
)

// mustDVCCSC encodes or fails the test.
func mustDVCCSC(t *testing.T, st Store) *DVCCSC {
	t.Helper()
	d, err := EncodeDVCCSC(st)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// assertEqualCSC compares every array of two column stores.
func assertEqualCSC(t *testing.T, want, got *CSC) {
	t.Helper()
	if want.R != got.R || want.C != got.C {
		t.Fatalf("csc dims %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
	}
	for j := range want.ColPtr {
		if want.ColPtr[j] != got.ColPtr[j] {
			t.Fatalf("csc colptr[%d]: %d, want %d", j, got.ColPtr[j], want.ColPtr[j])
		}
	}
	for k := range want.Row {
		if want.Row[k] != got.Row[k] || want.Val[k] != got.Val[k] {
			t.Fatalf("csc element %d: (%d,%g), want (%d,%g)", k, got.Row[k], got.Val[k], want.Row[k], want.Val[k])
		}
	}
}

func TestDVCCSCRoundTrip(t *testing.T) {
	r := rng.New(101)
	shapes := []struct{ rows, cols, n int }{
		{1, 1, 0},       // empty
		{1, 1, 1},       // single element
		{500, 3, 40},    // tall columns, large row gaps
		{40, 40, 600},   // dense-ish
		{700, 700, 900}, // spans multiple chunk-index entries
	}
	for _, weighted := range []bool{false, true} {
		for _, s := range shapes {
			var elems []Coord
			if weighted {
				elems = randomCoords(r, s.rows, s.cols, s.n)
			} else {
				elems = unitCoords(r, s.rows, s.cols, s.n)
			}
			m := MustCOO(s.rows, s.cols, elems)
			d := mustDVCCSC(t, m)
			if err := d.Validate(); err != nil {
				t.Fatalf("%dx%d weighted=%t: encoded stream invalid: %v", s.rows, s.cols, weighted, err)
			}
			got, err := d.ToCSC()
			if err != nil {
				t.Fatal(err)
			}
			assertEqualCSC(t, m.ToCSC(), got)
			if d.NNZ() != m.NNZ() {
				t.Fatalf("nnz %d, want %d", d.NNZ(), m.NNZ())
			}
			// Elision must track the actual values: Val present exactly
			// when some stored value differs from 1.
			hasNonUnit := false
			for _, v := range m.Val {
				if v != 1 {
					hasNonUnit = true
				}
			}
			if d.Weighted != hasNonUnit {
				t.Fatalf("Weighted=%t for a matrix with non-unit values=%t", d.Weighted, hasNonUnit)
			}
			if d.Weighted && len(d.Val) != m.NNZ() {
				t.Fatalf("weighted matrix: %d values for %d elements", len(d.Val), m.NNZ())
			}
			if !d.Weighted && d.Val != nil {
				t.Fatalf("unit-weight matrix kept a value array (%d entries)", len(d.Val))
			}
		}
	}
}

// DecodeCols through the chunk index must match the CSC reference for
// every subrange, and ColStreamBytes must tile the stream exactly.
func TestDVCCSCDecodeColsMatchesCSC(t *testing.T) {
	r := rng.New(103)
	m := MustCOO(600, 600, randomCoords(r, 600, 600, 5000))
	d := mustDVCCSC(t, m)
	csc := m.ToCSC()
	type elem struct {
		row, col int32
		val      float32
	}
	collect := func(cs ColStore, lo, hi int32) []elem {
		var out []elem
		cs.DecodeCols(lo, hi, func(row, col int32, val float32) {
			out = append(out, elem{row, col, val})
		})
		return out
	}
	ranges := [][2]int32{{0, 600}, {0, 1}, {599, 600}, {100, 300}, {255, 257}, {256, 512}, {300, 300}, {-5, 9000}}
	for _, rg := range ranges {
		want := collect(csc, rg[0], rg[1])
		got := collect(d, rg[0], rg[1])
		if len(got) != len(want) {
			t.Fatalf("cols [%d,%d): %d elements, want %d", rg[0], rg[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cols [%d,%d) element %d: %+v, want %+v", rg[0], rg[1], i, got[i], want[i])
			}
		}
	}
	var sum int64
	for _, n := range d.ColStreamBytes() {
		sum += int64(n)
	}
	if sum != int64(len(d.Data)) {
		t.Fatalf("ColStreamBytes tiles to %d bytes, stream has %d", sum, len(d.Data))
	}
	for j := range csc.ColPtr {
		if d.ColPrefix()[j] != csc.ColPtr[j] {
			t.Fatalf("ColPrefix[%d] = %d, want %d", j, d.ColPrefix()[j], csc.ColPtr[j])
		}
	}
}

// ColStoreOf must produce the identical column traversal whichever
// store backs the graph — uncompressed CSR scratch or the compressed
// column stream.
func TestColStoreOfAgreesAcrossFormats(t *testing.T) {
	r := rng.New(107)
	m := MustCOO(400, 400, randomCoords(r, 400, 400, 3000))
	dv, err := EncodeDVCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	bb := mustBBCSR(t, m)
	type elem struct {
		row, col int32
		val      float32
	}
	collect := func(cs ColStore) []elem {
		_, c := cs.Dims()
		var out []elem
		cs.DecodeCols(0, int32(c), func(row, col int32, val float32) {
			out = append(out, elem{row, col, val})
		})
		return out
	}
	want := collect(ColStoreOf(m))
	for name, st := range map[string]Store{"dvcsr": dv, "bbcsr": bb} {
		got := collect(ColStoreOf(st))
		if len(got) != len(want) {
			t.Fatalf("%s: %d elements, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s element %d: %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

func TestEncodeDVCCSCRejectsNonCanonical(t *testing.T) {
	dup := &COO{R: 4, C: 2, Row: []int32{2, 2}, Col: []int32{0, 0}, Val: []float32{1, 1}}
	oob := &COO{R: 4, C: 1, Row: []int32{0}, Col: []int32{9}, Val: []float32{1}}
	for name, m := range map[string]*COO{"duplicate": dup, "out-of-range": oob} {
		if _, err := EncodeDVCCSC(m); err == nil {
			t.Errorf("%s stream encoded without error", name)
		}
	}
}

func TestDVCCSCValidateRejectsCorruption(t *testing.T) {
	r := rng.New(109)
	m := MustCOO(600, 600, unitCoords(r, 600, 600, 4000))
	fresh := func() *DVCCSC { return mustDVCCSC(t, m) }
	cases := []struct {
		name    string
		corrupt func(d *DVCCSC)
		want    string
	}{
		{"truncated data", func(d *DVCCSC) { d.Data = d.Data[:len(d.Data)-1] }, ""},
		{"trailing bytes", func(d *DVCCSC) { d.Data = append(d.Data, 0x01) }, "stream ends"},
		{"ptr not monotone", func(d *DVCCSC) { d.Ptr[10] = d.Ptr[11] + 5 }, "monotone"},
		{"ptr wrong start", func(d *DVCCSC) { d.Ptr[0] = 1 }, "starts at"},
		{"ptr wrong length", func(d *DVCCSC) { d.Ptr = d.Ptr[:d.C] }, "length"},
		{"chunk offset skew", func(d *DVCCSC) { d.ChunkOff[1]++ }, "chunk"},
		{"chunk index short", func(d *DVCCSC) { d.ChunkOff = d.ChunkOff[:1] }, "chunk offsets"},
		{"bad chunk cols", func(d *DVCCSC) { d.ChunkCols = 0 }, "ChunkCols"},
		{"phantom values", func(d *DVCCSC) { d.Val = make([]float32, 3) }, "values"},
	}
	for _, tc := range cases {
		d := fresh()
		tc.corrupt(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted corrupt stream", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}
