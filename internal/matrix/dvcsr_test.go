package matrix

import (
	"strings"
	"testing"

	"cosparse/internal/rng"
)

// mustDVCSR encodes or fails the test.
func mustDVCSR(t *testing.T, m *COO) *DVCSR {
	t.Helper()
	d, err := EncodeDVCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// unitCoords returns random *distinct* coordinates whose values are
// all 1 — the unweighted-graph case where DVCSR elides the value
// array. Distinctness matters: NewCOO merges duplicates by summing, so
// colliding unit edges would produce values of 2 and defeat elision.
func unitCoords(r *rng.Rand, rows, cols, n int) []Coord {
	seen := make(map[int64]bool, n)
	elems := make([]Coord, 0, n)
	for len(elems) < n && len(seen) < rows*cols {
		row, col := r.Int31n(int32(rows)), r.Int31n(int32(cols))
		key := int64(row)<<32 | int64(col)
		if seen[key] {
			continue
		}
		seen[key] = true
		elems = append(elems, Coord{Row: row, Col: col, Val: 1})
	}
	return elems
}

func TestDVCSRRoundTrip(t *testing.T) {
	r := rng.New(41)
	shapes := []struct{ rows, cols, n int }{
		{1, 1, 0},       // empty
		{1, 1, 1},       // single element
		{3, 500, 40},    // wide rows, large gaps
		{40, 40, 600},   // dense-ish
		{700, 700, 900}, // spans multiple chunk-index entries
	}
	for _, weighted := range []bool{false, true} {
		for _, s := range shapes {
			var elems []Coord
			if weighted {
				elems = randomCoords(r, s.rows, s.cols, s.n)
			} else {
				elems = unitCoords(r, s.rows, s.cols, s.n)
			}
			m := MustCOO(s.rows, s.cols, elems)
			d := mustDVCSR(t, m)
			if err := d.Validate(); err != nil {
				t.Fatalf("%dx%d weighted=%t: encoded stream invalid: %v", s.rows, s.cols, weighted, err)
			}
			got, err := d.ToCOO()
			if err != nil {
				t.Fatal(err)
			}
			assertEqualCOO(t, m, got)
			if d.NNZ() != m.NNZ() {
				t.Fatalf("nnz %d, want %d", d.NNZ(), m.NNZ())
			}
		}
	}
}

// The value array must be elided exactly when every value is 1, and
// the estimate must predict the encoded footprint byte-for-byte.
func TestDVCSRWeightElisionAndEstimate(t *testing.T) {
	r := rng.New(43)
	unit := MustCOO(200, 200, unitCoords(r, 200, 200, 2000))
	du := mustDVCSR(t, unit)
	if du.Weighted || du.Val != nil {
		t.Fatalf("unit-weight matrix kept a value array (%d entries)", len(du.Val))
	}
	weighted := MustCOO(200, 200, randomCoords(r, 200, 200, 2000))
	dw := mustDVCSR(t, weighted)
	if !dw.Weighted || len(dw.Val) != weighted.NNZ() {
		t.Fatalf("weighted matrix: Weighted=%t, %d values for %d elements", dw.Weighted, len(dw.Val), weighted.NNZ())
	}
	for _, m := range []*COO{unit, weighted} {
		d := mustDVCSR(t, m)
		if est := EstimateDVCSRBytes(m); est != d.ResidentBytes() {
			t.Fatalf("estimate %d, encoded %d", est, d.ResidentBytes())
		}
	}
}

// DecodeRows through the chunk index must match the COO reference for
// every subrange, including ranges that start mid-chunk.
func TestDVCSRDecodeRowsMatchesCOO(t *testing.T) {
	r := rng.New(47)
	m := MustCOO(600, 600, randomCoords(r, 600, 600, 5000))
	d := mustDVCSR(t, m)
	type elem struct {
		row, col int32
		val      float32
	}
	collect := func(st Store, lo, hi int32) []elem {
		var out []elem
		st.DecodeRows(lo, hi, func(row, col int32, val float32) {
			out = append(out, elem{row, col, val})
		})
		return out
	}
	ranges := [][2]int32{{0, 600}, {0, 1}, {599, 600}, {100, 300}, {255, 257}, {256, 512}, {300, 300}, {-5, 9000}}
	for _, rg := range ranges {
		want := collect(m, rg[0], rg[1])
		got := collect(d, rg[0], rg[1])
		if len(got) != len(want) {
			t.Fatalf("rows [%d,%d): %d elements, want %d", rg[0], rg[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rows [%d,%d) element %d: %+v, want %+v", rg[0], rg[1], i, got[i], want[i])
			}
		}
	}
}

// The selector must pick DVCSR for the shapes the paper's graphs have
// (skewed degrees, unit weights) and stay on CSR when compression
// cannot pay — sparse rows with huge gaps and random weights.
func TestAutoSelect(t *testing.T) {
	r := rng.New(53)
	clustered := MustCOO(500, 500, unitCoords(r, 500, 500, 8000))
	if got := AutoSelect(clustered); got != FormatDVCSR {
		t.Fatalf("clustered unit-weight matrix selected %v", got)
	}
	// A handful of weighted elements scattered across a wide row space:
	// every column needs a multi-byte varint and the value array stays,
	// so compression is under threshold.
	wide := MustCOO(4, 1<<30, []Coord{
		{0, 1 << 29, 0.5}, {1, 1<<29 + 7, 0.25}, {2, 1 << 28, 0.125}, {3, 1<<30 - 1, 0.75},
	})
	if got := AutoSelect(wide); got != FormatCSR {
		t.Fatalf("incompressible matrix selected %v", got)
	}
}

func TestEncodeDVCSRRejectsNonCanonical(t *testing.T) {
	// Bypass NewCOO to build broken streams a hostile caller could hold.
	dup := &COO{R: 2, C: 4, Row: []int32{0, 0}, Col: []int32{2, 2}, Val: []float32{1, 1}}
	unsorted := &COO{R: 1, C: 4, Row: []int32{0, 0}, Col: []int32{3, 1}, Val: []float32{1, 1}}
	oob := &COO{R: 1, C: 4, Row: []int32{0}, Col: []int32{9}, Val: []float32{1}}
	for name, m := range map[string]*COO{"duplicate": dup, "unsorted": unsorted, "out-of-range": oob} {
		if _, err := EncodeDVCSR(m); err == nil {
			t.Errorf("%s columns encoded without error", name)
		}
	}
}

func TestDVCSRValidateRejectsCorruption(t *testing.T) {
	r := rng.New(59)
	m := MustCOO(600, 600, unitCoords(r, 600, 600, 4000))
	fresh := func() *DVCSR { return mustDVCSR(t, m) }
	cases := []struct {
		name    string
		corrupt func(d *DVCSR)
		want    string
	}{
		// Whether truncation reads as a short stream or a cut varint
		// depends on where the last byte boundary lands, so only the
		// rejection itself is pinned.
		{"truncated data", func(d *DVCSR) { d.Data = d.Data[:len(d.Data)-1] }, ""},
		{"trailing bytes", func(d *DVCSR) { d.Data = append(d.Data, 0x01) }, "stream ends"},
		{"ptr not monotone", func(d *DVCSR) { d.Ptr[10] = d.Ptr[11] + 5 }, "monotone"},
		{"ptr wrong start", func(d *DVCSR) { d.Ptr[0] = 1 }, "starts at"},
		{"ptr wrong length", func(d *DVCSR) { d.Ptr = d.Ptr[:d.R] }, "length"},
		{"chunk offset skew", func(d *DVCSR) { d.ChunkOff[1]++ }, "chunk"},
		{"chunk index short", func(d *DVCSR) { d.ChunkOff = d.ChunkOff[:1] }, "chunk offsets"},
		{"bad chunk rows", func(d *DVCSR) { d.ChunkRows = 0 }, "ChunkRows"},
		{"phantom values", func(d *DVCSR) { d.Val = make([]float32, 3) }, "values"},
		{"zero gap", func(d *DVCSR) {
			// Overwrite row 0's second varint with gap 0 (a duplicate
			// column). Row 0 is non-empty for this seed.
			if d.Ptr[1]-d.Ptr[0] < 2 {
				t.Fatal("test wants >= 2 elements in row 0")
			}
			first := 0
			for d.Data[first]&0x80 != 0 {
				first++
			}
			d.Data[first+1] = 0
		}, ""},
	}
	for _, tc := range cases {
		d := fresh()
		tc.corrupt(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted corrupt stream", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}

// Store-seam helpers must agree across representations: out-degrees
// and the derived CSC are the same whichever store backs the graph.
func TestStoreHelpersAgreeAcrossFormats(t *testing.T) {
	r := rng.New(61)
	m := MustCOO(300, 300, randomCoords(r, 300, 300, 2500))
	d := mustDVCSR(t, m)

	degCOO, degDV := OutDegreesOf(m), OutDegreesOf(d)
	for i := range degCOO {
		if degCOO[i] != degDV[i] {
			t.Fatalf("row %d: degree %d vs %d", i, degCOO[i], degDV[i])
		}
	}

	want, got := m.ToCSC(), CSCOf(d)
	if want.R != got.R || want.C != got.C {
		t.Fatalf("csc dims %dx%d vs %dx%d", got.R, got.C, want.R, want.C)
	}
	for i := range want.ColPtr {
		if want.ColPtr[i] != got.ColPtr[i] {
			t.Fatalf("csc colptr[%d]: %d vs %d", i, got.ColPtr[i], want.ColPtr[i])
		}
	}
	for k := range want.Row {
		if want.Row[k] != got.Row[k] || want.Val[k] != got.Val[k] {
			t.Fatalf("csc element %d: (%d,%g) vs (%d,%g)", k, got.Row[k], got.Val[k], want.Row[k], want.Val[k])
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Format
		err  bool
	}{
		{"", FormatCSR, false},
		{"csr", FormatCSR, false},
		{" DVCSR ", FormatDVCSR, false},
		{"bbcsr", FormatBBCSR, false},
		{"zstd", FormatCSR, true},
	} {
		got, err := ParseFormat(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseFormat(%q) error = %v, want error %t", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseFormat(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
