package matrix

import (
	"strings"
	"testing"

	"cosparse/internal/rng"
)

// mustBBCSR encodes or fails the test.
func mustBBCSR(t *testing.T, st Store) *BBCSR {
	t.Helper()
	b, err := EncodeBBCSR(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// denseBlockCoords builds rows of consecutive runs — the near-dense
// tile shape where bitmap blocks amortize to about a bit per element.
func denseBlockCoords(rows, runLen int) []Coord {
	var elems []Coord
	for i := 0; i < rows; i++ {
		start := (i * 17) % 64
		for j := 0; j < runLen; j++ {
			elems = append(elems, Coord{Row: int32(i), Col: int32(start + j), Val: 1})
		}
	}
	return elems
}

func TestBBCSRRoundTrip(t *testing.T) {
	r := rng.New(71)
	shapes := []struct{ rows, cols, n int }{
		{1, 1, 0},       // empty
		{1, 1, 1},       // single element
		{3, 500, 40},    // wide rows, sparse blocks
		{40, 40, 600},   // dense-ish
		{700, 700, 900}, // spans multiple chunk-index entries
		{5, 63, 80},     // C not a multiple of the block width
	}
	for _, weighted := range []bool{false, true} {
		for _, s := range shapes {
			var elems []Coord
			if weighted {
				elems = randomCoords(r, s.rows, s.cols, s.n)
			} else {
				elems = unitCoords(r, s.rows, s.cols, s.n)
			}
			m := MustCOO(s.rows, s.cols, elems)
			b := mustBBCSR(t, m)
			if err := b.Validate(); err != nil {
				t.Fatalf("%dx%d weighted=%t: encoded stream invalid: %v", s.rows, s.cols, weighted, err)
			}
			got, err := b.ToCOO()
			if err != nil {
				t.Fatal(err)
			}
			assertEqualCOO(t, m, got)
			if b.NNZ() != m.NNZ() {
				t.Fatalf("nnz %d, want %d", b.NNZ(), m.NNZ())
			}
		}
	}
}

// The value array must be elided exactly when every value is 1, and
// the estimate must predict the encoded footprint byte-for-byte.
func TestBBCSRWeightElisionAndEstimate(t *testing.T) {
	r := rng.New(73)
	unit := MustCOO(200, 200, unitCoords(r, 200, 200, 2000))
	bu := mustBBCSR(t, unit)
	if bu.Weighted || bu.Val != nil {
		t.Fatalf("unit-weight matrix kept a value array (%d entries)", len(bu.Val))
	}
	weighted := MustCOO(200, 200, randomCoords(r, 200, 200, 2000))
	bw := mustBBCSR(t, weighted)
	if !bw.Weighted || len(bw.Val) != weighted.NNZ() {
		t.Fatalf("weighted matrix: Weighted=%t, %d values for %d elements", bw.Weighted, len(bw.Val), weighted.NNZ())
	}
	for _, m := range []*COO{unit, weighted} {
		b := mustBBCSR(t, m)
		if est := EstimateBBCSRBytes(m); est != b.ResidentBytes() {
			t.Fatalf("estimate %d, encoded %d", est, b.ResidentBytes())
		}
	}
}

// DecodeRows through the chunk index must match the COO reference for
// every subrange, including ranges that start mid-chunk, and
// EncodedRowBytes must tile the stream exactly.
func TestBBCSRDecodeRowsMatchesCOO(t *testing.T) {
	r := rng.New(79)
	m := MustCOO(600, 600, randomCoords(r, 600, 600, 5000))
	b := mustBBCSR(t, m)
	type elem struct {
		row, col int32
		val      float32
	}
	collect := func(st Store, lo, hi int32) []elem {
		var out []elem
		st.DecodeRows(lo, hi, func(row, col int32, val float32) {
			out = append(out, elem{row, col, val})
		})
		return out
	}
	ranges := [][2]int32{{0, 600}, {0, 1}, {599, 600}, {100, 300}, {255, 257}, {256, 512}, {300, 300}, {-5, 9000}}
	for _, rg := range ranges {
		want := collect(m, rg[0], rg[1])
		got := collect(b, rg[0], rg[1])
		if len(got) != len(want) {
			t.Fatalf("rows [%d,%d): %d elements, want %d", rg[0], rg[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rows [%d,%d) element %d: %+v, want %+v", rg[0], rg[1], i, got[i], want[i])
			}
		}
	}
	var sum int64
	for _, rg := range [][2]int32{{0, 150}, {150, 400}, {400, 600}} {
		sum += b.EncodedRowBytes(rg[0], rg[1])
	}
	if sum != int64(len(b.Data)) {
		t.Fatalf("EncodedRowBytes tiles to %d bytes, stream has %d", sum, len(b.Data))
	}
}

// The tri-format selector must route near-dense block structure to
// BBCSR, skewed sparse unit-weight graphs to DVCSR, and incompressible
// scatter to CSR.
func TestAutoSelectStoreTriFormat(t *testing.T) {
	blocky := MustCOO(256, 256, denseBlockCoords(256, 128))
	if got := AutoSelectStore(blocky); got != FormatBBCSR {
		t.Fatalf("dense-block matrix selected %v, want bbcsr", got)
	}
	r := rng.New(83)
	clustered := MustCOO(500, 500, unitCoords(r, 500, 500, 8000))
	if got := AutoSelectStore(clustered); got != FormatDVCSR {
		t.Fatalf("clustered unit-weight matrix selected %v, want dvcsr", got)
	}
	wide := MustCOO(4, 1<<30, []Coord{
		{0, 1 << 29, 0.5}, {1, 1<<29 + 7, 0.25}, {2, 1 << 28, 0.125}, {3, 1<<30 - 1, 0.75},
	})
	if got := AutoSelectStore(wide); got != FormatCSR {
		t.Fatalf("incompressible matrix selected %v, want csr", got)
	}
	// The Store-seam selector must agree with itself when handed the
	// already-compressed resident form of the same graph.
	if got := AutoSelectStore(mustBBCSR(t, blocky)); got != FormatBBCSR {
		t.Fatalf("re-selection over resident bbcsr picked %v", got)
	}
}

func TestEncodeBBCSRRejectsNonCanonical(t *testing.T) {
	dup := &COO{R: 2, C: 4, Row: []int32{0, 0}, Col: []int32{2, 2}, Val: []float32{1, 1}}
	unsorted := &COO{R: 1, C: 4, Row: []int32{0, 0}, Col: []int32{3, 1}, Val: []float32{1, 1}}
	oob := &COO{R: 1, C: 4, Row: []int32{0}, Col: []int32{9}, Val: []float32{1}}
	for name, m := range map[string]*COO{"duplicate": dup, "unsorted": unsorted, "out-of-range": oob} {
		if _, err := EncodeBBCSR(m); err == nil {
			t.Errorf("%s columns encoded without error", name)
		}
	}
}

func TestBBCSRValidateRejectsCorruption(t *testing.T) {
	r := rng.New(89)
	m := MustCOO(600, 600, unitCoords(r, 600, 600, 4000))
	fresh := func() *BBCSR { return mustBBCSR(t, m) }
	cases := []struct {
		name    string
		corrupt func(b *BBCSR)
		want    string
	}{
		{"truncated data", func(b *BBCSR) { b.Data = b.Data[:len(b.Data)-1] }, ""},
		{"trailing bytes", func(b *BBCSR) { b.Data = append(b.Data, 0x01) }, "stream ends"},
		{"ptr not monotone", func(b *BBCSR) { b.Ptr[10] = b.Ptr[11] + 5 }, "monotone"},
		{"ptr wrong start", func(b *BBCSR) { b.Ptr[0] = 1 }, "starts at"},
		{"ptr wrong length", func(b *BBCSR) { b.Ptr = b.Ptr[:b.R] }, "length"},
		{"chunk offset skew", func(b *BBCSR) { b.ChunkOff[1]++ }, "chunk"},
		{"chunk index short", func(b *BBCSR) { b.ChunkOff = b.ChunkOff[:1] }, "chunk offsets"},
		{"bad chunk rows", func(b *BBCSR) { b.ChunkRows = 0 }, "ChunkRows"},
		{"phantom values", func(b *BBCSR) { b.Val = make([]float32, 3) }, "values"},
		{"zero bitmap", func(b *BBCSR) {
			// Zero out the first row's first bitmap: the 8 bytes after its
			// leading block-index varint.
			if b.Ptr[1] == 0 {
				t.Fatal("test wants a non-empty row 0")
			}
			first := 0
			for b.Data[first]&0x80 != 0 {
				first++
			}
			for k := 1; k <= 8; k++ {
				b.Data[first+k] = 0
			}
		}, ""},
	}
	for _, tc := range cases {
		b := fresh()
		tc.corrupt(b)
		err := b.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted corrupt stream", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}

// A bitmap with bits past column C must be rejected even though the
// popcount math would otherwise balance.
func TestBBCSRValidateRejectsBitsPastC(t *testing.T) {
	m := MustCOO(1, 63, []Coord{{0, 62, 1}})
	b := mustBBCSR(t, m)
	// Flip bit 63 (column 63 of a 63-column matrix) and bump the count
	// so popcount accounting alone would accept it.
	b.Data[len(b.Data)-1] |= 0x80
	b.Ptr[1]++
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "past column") {
		t.Fatalf("bitmap bit past C validated: %v", err)
	}
}
