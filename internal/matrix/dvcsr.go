package matrix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DefaultChunkRows is the row granularity of the DVCSR chunk index:
// one absolute byte offset is kept per this many rows, so a decoder
// can start at any row after skipping at most ChunkRows-1 rows of
// varints — the hierarchical-index idea of compression co-designed
// with random access (SMASH), at an 8-byte-per-256-rows overhead.
const DefaultChunkRows = 256

// DVCSR is delta-varint compressed sparse row: per row, the first
// column index and then the strictly positive gaps to each subsequent
// column, all as unsigned varints in one contiguous byte stream. The
// value array is elided entirely when every stored value is exactly 1
// (unweighted graphs — BFS/PR workloads), which is where the bulk of
// the compression on graph data comes from: 12 bytes per edge in the
// COO baseline against typically 1–3 here.
//
// RowPtr doubles as the element prefix the partition cutters need and
// the per-row varint counts the decoder needs, so rows are seekable:
// ChunkOff gives an absolute byte offset every ChunkRows rows, and a
// decoder skips forward from there.
type DVCSR struct {
	R, C      int
	Ptr       []int32 // element prefix, length R+1
	Data      []byte  // concatenated per-row delta-varint column streams
	ChunkRows int     // rows per ChunkOff entry
	ChunkOff  []int64 // byte offset of row i*ChunkRows's stream
	Val       []float32
	// Weighted records whether Val is present; when false every stored
	// element has value 1 and Val is nil.
	Weighted bool
}

// NNZ returns the number of stored elements.
func (d *DVCSR) NNZ() int {
	if len(d.Ptr) != d.R+1 || d.R < 0 {
		return 0
	}
	return int(d.Ptr[d.R])
}

// Dims implements Store.
func (d *DVCSR) Dims() (int, int) { return d.R, d.C }

// Format implements Store.
func (d *DVCSR) Format() Format { return FormatDVCSR }

// ResidentBytes implements Store: the measured footprint of the
// backing arrays.
func (d *DVCSR) ResidentBytes() int64 {
	return int64(len(d.Data)) + 4*int64(len(d.Ptr)) + 8*int64(len(d.ChunkOff)) + 4*int64(len(d.Val))
}

// EncodeDVCSR compresses a canonical (row-major sorted, deduplicated,
// as produced by NewCOO) matrix. It fails on matrices that violate the
// canonical ordering rather than encode an undecodable stream.
func EncodeDVCSR(m *COO) (*DVCSR, error) {
	if m.R < 0 || m.C < 0 || m.R > math.MaxInt32 || m.C > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dvcsr: dimensions %dx%d outside 32-bit index space", m.R, m.C)
	}
	if len(m.Val) > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dvcsr: %d elements exceed 32-bit index space", len(m.Val))
	}
	d := &DVCSR{
		R:         m.R,
		C:         m.C,
		Ptr:       m.RowPtr(),
		ChunkRows: DefaultChunkRows,
	}
	nchunks := (m.R + d.ChunkRows - 1) / d.ChunkRows
	d.ChunkOff = make([]int64, nchunks)
	d.Data = make([]byte, 0, estimateDVCSRDataBytes(m))
	for i := 0; i < m.R; i++ {
		if i%d.ChunkRows == 0 {
			d.ChunkOff[i/d.ChunkRows] = int64(len(d.Data))
		}
		prev := int32(-1)
		for k := d.Ptr[i]; k < d.Ptr[i+1]; k++ {
			col := m.Col[k]
			if col <= prev || col < 0 || int(col) >= m.C {
				return nil, fmt.Errorf("matrix: dvcsr: row %d not canonical at column %d", i, col)
			}
			if prev < 0 {
				d.Data = binary.AppendUvarint(d.Data, uint64(col))
			} else {
				d.Data = binary.AppendUvarint(d.Data, uint64(col-prev))
			}
			prev = col
		}
	}
	for _, v := range m.Val {
		if v != 1 {
			d.Weighted = true
			break
		}
	}
	if d.Weighted {
		d.Val = make([]float32, len(m.Val))
		copy(d.Val, m.Val)
	}
	return d, nil
}

// uvarintLen returns the encoded size of one unsigned varint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// estimateDVCSRDataBytes computes the exact size of the Data stream
// EncodeDVCSR would produce, without allocating it — one pass over the
// column gaps. The result is a pure function of the matrix's density
// and degree skew: dense or hub-heavy rows have small gaps and encode
// near one byte per element.
func estimateDVCSRDataBytes(m *COO) int {
	bytes := 0
	prevRow, prevCol := int32(-1), int32(-1)
	for k := range m.Col {
		if m.Row[k] != prevRow {
			prevRow, prevCol = m.Row[k], -1
		}
		if prevCol < 0 {
			bytes += uvarintLen(uint64(m.Col[k]))
		} else {
			bytes += uvarintLen(uint64(m.Col[k] - prevCol))
		}
		prevCol = m.Col[k]
	}
	return bytes
}

// EncodeDVCSRStore compresses any store's element stream to DVCSR
// without materializing an intermediate COO — one streaming pass, the
// format seam's conversion path for already-compressed sources.
func EncodeDVCSRStore(st Store) (*DVCSR, error) {
	if m, ok := st.(*COO); ok {
		return EncodeDVCSR(m)
	}
	r, c := st.Dims()
	if r < 0 || c < 0 || r > math.MaxInt32 || c > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dvcsr: dimensions %dx%d outside 32-bit index space", r, c)
	}
	if st.NNZ() > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: dvcsr: %d elements exceed 32-bit index space", st.NNZ())
	}
	d := &DVCSR{
		R:         r,
		C:         c,
		Ptr:       st.RowPtr(),
		ChunkRows: DefaultChunkRows,
	}
	nchunks := (r + d.ChunkRows - 1) / d.ChunkRows
	d.ChunkOff = make([]int64, nchunks)
	d.Data = make([]byte, 0, estimateDVCSRDataBytesStore(st))
	vals := make([]float32, 0, st.NNZ())
	cur, prevCol := int32(-1), int32(-1)
	var encErr error
	st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		if encErr != nil {
			return
		}
		if row < cur || col < 0 || int(col) >= c {
			encErr = fmt.Errorf("matrix: dvcsr: stream not canonical at (%d,%d)", row, col)
			return
		}
		if row != cur {
			for rr := cur + 1; rr <= row; rr++ {
				if rr%int32(d.ChunkRows) == 0 {
					d.ChunkOff[rr/int32(d.ChunkRows)] = int64(len(d.Data))
				}
			}
			cur, prevCol = row, -1
		} else if col <= prevCol {
			encErr = fmt.Errorf("matrix: dvcsr: row %d not canonical at column %d", row, col)
			return
		}
		if prevCol < 0 {
			d.Data = binary.AppendUvarint(d.Data, uint64(col))
		} else {
			d.Data = binary.AppendUvarint(d.Data, uint64(col-prevCol))
		}
		prevCol = col
		if val != 1 {
			d.Weighted = true
		}
		vals = append(vals, val)
	})
	if encErr != nil {
		return nil, encErr
	}
	for rr := cur + 1; int(rr) < r; rr++ {
		if rr%int32(d.ChunkRows) == 0 {
			d.ChunkOff[rr/int32(d.ChunkRows)] = int64(len(d.Data))
		}
	}
	if d.Weighted {
		d.Val = vals
	}
	return d, nil
}

// estimateDVCSRDataBytesStore is estimateDVCSRDataBytes over the
// format seam: the exact Data stream size from one decode pass.
func estimateDVCSRDataBytesStore(st Store) int64 {
	if m, ok := st.(*COO); ok {
		return int64(estimateDVCSRDataBytes(m))
	}
	var bytes int64
	prevRow, prevCol := int32(-1), int32(-1)
	r, _ := st.Dims()
	st.DecodeRows(0, int32(r), func(row, col int32, _ float32) {
		if row != prevRow {
			prevRow, prevCol = row, -1
		}
		if prevCol < 0 {
			bytes += int64(uvarintLen(uint64(col)))
		} else {
			bytes += int64(uvarintLen(uint64(col - prevCol)))
		}
		prevCol = col
	})
	return bytes
}

// EstimateDVCSRBytesStore returns the exact resident footprint
// EncodeDVCSRStore would produce, without building it.
func EstimateDVCSRBytesStore(st Store) int64 {
	if m, ok := st.(*COO); ok {
		return EstimateDVCSRBytes(m)
	}
	if d, ok := st.(*DVCSR); ok {
		return d.ResidentBytes()
	}
	r, _ := st.Dims()
	valBytes := int64(0)
	if weightedOf(st) {
		valBytes = 4 * int64(st.NNZ())
	}
	nchunks := int64(0)
	if r > 0 {
		nchunks = int64((r + DefaultChunkRows - 1) / DefaultChunkRows)
	}
	return estimateDVCSRDataBytesStore(st) + 4*int64(r+1) + 8*nchunks + valBytes
}

// EstimateDVCSRBytes returns the exact resident footprint EncodeDVCSR
// would produce for m, without building it.
func EstimateDVCSRBytes(m *COO) int64 {
	weighted := false
	for _, v := range m.Val {
		if v != 1 {
			weighted = true
			break
		}
	}
	valBytes := int64(0)
	if weighted {
		valBytes = 4 * int64(len(m.Val))
	}
	nchunks := int64(0)
	if m.R > 0 {
		nchunks = int64((m.R + DefaultChunkRows - 1) / DefaultChunkRows)
	}
	return int64(estimateDVCSRDataBytes(m)) + 4*int64(m.R+1) + 8*nchunks + valBytes
}

// AutoSelectThreshold is the minimum space saving (as a ratio of
// baseline to compressed bytes) the registration-time selector
// demands before picking a compressed format over the CSR baseline.
const AutoSelectThreshold = 1.25

// AutoSelect picks the storage format for a graph at registration
// time. The decision is driven by the matrix's density and degree
// skew through the gap distribution: delta-varint columns shrink with
// small gaps and elide values for unit weights; bitmap blocks amortize
// near-dense tiles to one bit per element where gap varints cost a
// full byte. Both encoded sizes are exact and computable in one cheap
// pass each; the smaller wins, but only when it saves at least
// AutoSelectThreshold× over the baseline.
func AutoSelect(m *COO) Format {
	return AutoSelectStore(m)
}

// AutoSelectStore is AutoSelect over the format seam, so re-selection
// works from any resident representation.
func AutoSelectStore(st Store) Format {
	enc, pick := EstimateDVCSRBytesStore(st), FormatDVCSR
	if bb := EstimateBBCSRBytes(st); bb < enc {
		enc, pick = bb, FormatBBCSR
	}
	if enc <= 0 {
		return FormatCSR
	}
	base := int64(st.NNZ()) * 12
	if float64(base)/float64(enc) >= AutoSelectThreshold {
		return pick
	}
	return FormatCSR
}

// Validate checks every structural invariant of the compressed stream,
// decoding it end to end with full bounds checks: shape and length
// consistency, chunk offsets that match the actual stream positions,
// strictly ascending in-range columns, and exact byte consumption. It
// is safe on arbitrary hostile bytes and is the screen every untrusted
// DVCSR must pass before DecodeRows may be used.
func (d *DVCSR) Validate() error {
	if d.R < 0 || d.C < 0 || d.R > math.MaxInt32 || d.C > math.MaxInt32 {
		return fmt.Errorf("matrix: dvcsr: dimensions %dx%d outside 32-bit index space", d.R, d.C)
	}
	if len(d.Ptr) != d.R+1 {
		return fmt.Errorf("matrix: dvcsr: RowPtr length %d, want %d", len(d.Ptr), d.R+1)
	}
	if d.Ptr[0] != 0 {
		return fmt.Errorf("matrix: dvcsr: RowPtr starts at %d, want 0", d.Ptr[0])
	}
	for i := 0; i < d.R; i++ {
		if d.Ptr[i] > d.Ptr[i+1] {
			return fmt.Errorf("matrix: dvcsr: RowPtr not monotone at row %d", i)
		}
	}
	nnz := int(d.Ptr[d.R])
	if nnz < 0 {
		return fmt.Errorf("matrix: dvcsr: negative element count %d", nnz)
	}
	if d.Weighted && len(d.Val) != nnz {
		return fmt.Errorf("matrix: dvcsr: %d values for %d elements", len(d.Val), nnz)
	}
	if !d.Weighted && len(d.Val) != 0 {
		return fmt.Errorf("matrix: dvcsr: unweighted stream carries %d values", len(d.Val))
	}
	if d.ChunkRows < 1 {
		return fmt.Errorf("matrix: dvcsr: ChunkRows %d, want >= 1", d.ChunkRows)
	}
	wantChunks := 0
	if d.R > 0 {
		wantChunks = (d.R + d.ChunkRows - 1) / d.ChunkRows
	}
	if len(d.ChunkOff) != wantChunks {
		return fmt.Errorf("matrix: dvcsr: %d chunk offsets, want %d", len(d.ChunkOff), wantChunks)
	}
	pos := 0
	for i := 0; i < d.R; i++ {
		if i%d.ChunkRows == 0 {
			if off := d.ChunkOff[i/d.ChunkRows]; off != int64(pos) {
				return fmt.Errorf("matrix: dvcsr: chunk %d offset %d, stream is at %d", i/d.ChunkRows, off, pos)
			}
		}
		var err error
		pos, err = d.scanRow(i, pos, nil)
		if err != nil {
			return err
		}
	}
	if pos != len(d.Data) {
		return fmt.Errorf("matrix: dvcsr: stream ends at byte %d, Data has %d", pos, len(d.Data))
	}
	return nil
}

// scanRow decodes row i's varint stream starting at byte pos,
// returning the position after the row. emit, when non-nil, receives
// each decoded column. Every read is bounds-checked so hostile or
// truncated streams fail with an error, never a panic or overflow.
func (d *DVCSR) scanRow(i, pos int, emit func(col int32)) (int, error) {
	count := int(d.Ptr[i+1] - d.Ptr[i])
	col := int64(-1)
	for k := 0; k < count; k++ {
		if pos >= len(d.Data) {
			return 0, fmt.Errorf("matrix: dvcsr: truncated stream in row %d (element %d of %d)", i, k, count)
		}
		v, n := binary.Uvarint(d.Data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("matrix: dvcsr: malformed varint in row %d at byte %d", i, pos)
		}
		pos += n
		if v > math.MaxInt32 {
			return 0, fmt.Errorf("matrix: dvcsr: varint %d in row %d outside 32-bit index space", v, i)
		}
		if col < 0 {
			col = int64(v)
		} else {
			if v == 0 {
				return 0, fmt.Errorf("matrix: dvcsr: zero column gap in row %d (duplicate column)", i)
			}
			col += int64(v)
		}
		if col >= int64(d.C) {
			return 0, fmt.Errorf("matrix: dvcsr: column %d in row %d outside %d columns", col, i, d.C)
		}
		if emit != nil {
			emit(int32(col))
		}
	}
	return pos, nil
}

// decodeRange streams the elements of rows [lo, hi) with full bounds
// checking, seeking via the chunk index and skipping rows before lo.
func (d *DVCSR) decodeRange(lo, hi int32, emit func(row, col int32, val float32)) error {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > d.R {
		hi = int32(d.R)
	}
	if lo >= hi {
		return nil
	}
	if len(d.Ptr) != d.R+1 || d.ChunkRows < 1 {
		return fmt.Errorf("matrix: dvcsr: malformed header (RowPtr %d for %d rows, ChunkRows %d)", len(d.Ptr), d.R, d.ChunkRows)
	}
	chunk := int(lo) / d.ChunkRows
	if chunk >= len(d.ChunkOff) {
		return fmt.Errorf("matrix: dvcsr: row %d beyond the chunk index", lo)
	}
	off := d.ChunkOff[chunk]
	if off < 0 || off > int64(len(d.Data)) {
		return fmt.Errorf("matrix: dvcsr: chunk %d offset %d outside %d data bytes", chunk, off, len(d.Data))
	}
	pos := int(off)
	for i := chunk * d.ChunkRows; i < int(lo); i++ {
		var err error
		pos, err = d.scanRow(i, pos, nil)
		if err != nil {
			return err
		}
	}
	for i := int(lo); i < int(hi); i++ {
		row := int32(i)
		k := d.Ptr[i]
		// A non-monotone prefix could promise more elements than the
		// value array holds; reject before the lookup can run past it.
		if d.Weighted && (k < 0 || int(d.Ptr[i+1]) > len(d.Val)) {
			return fmt.Errorf("matrix: dvcsr: row %d elements [%d,%d) outside %d values", i, k, d.Ptr[i+1], len(d.Val))
		}
		var err error
		pos, err = d.scanRow(i, pos, func(col int32) {
			v := float32(1)
			if d.Weighted {
				v = d.Val[k]
			}
			k++
			emit(row, col, v)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// DecodeRows implements Store. The store must be trusted (built by
// EncodeDVCSR) or have passed Validate; corruption discovered
// mid-stream panics, matching the package's other impossible paths.
func (d *DVCSR) DecodeRows(lo, hi int32, emit func(row, col int32, val float32)) {
	if err := d.decodeRange(lo, hi, emit); err != nil {
		panic(err)
	}
}

// ToCOO implements Store, materializing the canonical row-major COO.
// The decode enforces the stream invariants, so the result satisfies
// COO.Validate by construction.
func (d *DVCSR) ToCOO() (*COO, error) {
	if len(d.Ptr) != d.R+1 {
		return nil, fmt.Errorf("matrix: dvcsr: RowPtr length %d, want %d", len(d.Ptr), d.R+1)
	}
	nnz := d.NNZ()
	if nnz < 0 || (d.Weighted && len(d.Val) != nnz) {
		return nil, fmt.Errorf("matrix: dvcsr: inconsistent element count %d (%d values)", nnz, len(d.Val))
	}
	// The row prefix is untrusted here: cap the pre-allocation so a
	// forged element count can't allocate unboundedly — append grows as
	// the stream actually delivers.
	prealloc := nnz
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	out := &COO{
		R:   d.R,
		C:   d.C,
		Row: make([]int32, 0, prealloc),
		Col: make([]int32, 0, prealloc),
		Val: make([]float32, 0, prealloc),
	}
	err := d.decodeRange(0, int32(d.R), func(row, col int32, val float32) {
		out.Row = append(out.Row, row)
		out.Col = append(out.Col, col)
		out.Val = append(out.Val, val)
	})
	if err != nil {
		return nil, err
	}
	if len(out.Val) != nnz {
		return nil, fmt.Errorf("matrix: dvcsr: decoded %d elements, RowPtr promises %d", len(out.Val), nnz)
	}
	return out, nil
}

// RowPtr implements Store (the prefix is stored, not recomputed).
func (d *DVCSR) RowPtr() []int32 { return d.Ptr }

// EncodedRowBytes returns the length in bytes of the compressed stream
// holding rows [lo, hi) — what a decode PE would fetch to produce that
// row range. The store must be trusted or validated.
func (d *DVCSR) EncodedRowBytes(lo, hi int32) int64 {
	start, err := d.rowOffset(lo)
	if err != nil {
		panic(err)
	}
	end, err := d.rowOffset(hi)
	if err != nil {
		panic(err)
	}
	return int64(end - start)
}

// rowOffset returns the byte offset of row i's stream (len(Data) for
// i >= R), seeking via the chunk index.
func (d *DVCSR) rowOffset(i int32) (int, error) {
	if i < 0 {
		i = 0
	}
	if int(i) >= d.R {
		return len(d.Data), nil
	}
	chunk := int(i) / d.ChunkRows
	if chunk >= len(d.ChunkOff) {
		return 0, fmt.Errorf("matrix: dvcsr: row %d beyond the chunk index", i)
	}
	pos := int(d.ChunkOff[chunk])
	for r := chunk * d.ChunkRows; r < int(i); r++ {
		var err error
		pos, err = d.scanRow(r, pos, nil)
		if err != nil {
			return 0, err
		}
	}
	return pos, nil
}
