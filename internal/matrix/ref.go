package matrix

// RefSpMV computes y = A·x with ordinary (+,×) arithmetic directly from
// the COO representation. It is the correctness oracle for the
// simulated kernels; float64 accumulation keeps it a little more
// accurate than the float32 kernels, so comparisons use a tolerance.
func RefSpMV(m *COO, x Dense) Dense {
	acc := make([]float64, m.R)
	for k := range m.Val {
		acc[m.Row[k]] += float64(m.Val[k]) * float64(x[m.Col[k]])
	}
	y := make(Dense, m.R)
	for i, a := range acc {
		y[i] = float32(a)
	}
	return y
}

// RefSpMVSparse computes y = A·x for a sparse x, touching only the
// columns with explicit entries — the work-skipping property that makes
// OP win at low frontier density. Returns a sparse result containing
// only rows that received at least one contribution.
func RefSpMVSparse(m *CSC, x *SparseVec) *SparseVec {
	acc := make(map[int32]float64)
	for k, j := range x.Idx {
		xv := float64(x.Val[k])
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			acc[m.Row[p]] += float64(m.Val[p]) * xv
		}
	}
	idx := make([]int32, 0, len(acc))
	for i := range acc {
		idx = append(idx, i)
	}
	// Sorted output keeps the representation canonical.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := &SparseVec{N: m.R, Idx: idx, Val: make([]float32, len(idx))}
	for k, i := range idx {
		out.Val[k] = float32(acc[i])
	}
	return out
}
