package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"cosparse/internal/rng"
)

func randomCoords(r *rng.Rand, rows, cols, n int) []Coord {
	elems := make([]Coord, n)
	for i := range elems {
		elems[i] = Coord{
			Row: r.Int31n(int32(rows)),
			Col: r.Int31n(int32(cols)),
			Val: r.Float32()*2 - 1,
		}
	}
	return elems
}

func TestNewCOOSortsAndDedups(t *testing.T) {
	m := MustCOO(3, 3, []Coord{
		{2, 1, 1}, {0, 0, 1}, {2, 1, 2}, {1, 2, 3}, {0, 2, 4},
	})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (duplicate combined)", m.NNZ())
	}
	// The duplicate (2,1) must have summed to 3.
	last := m.NNZ() - 1
	if m.Row[last] != 2 || m.Col[last] != 1 || m.Val[last] != 3 {
		t.Fatalf("last element = (%d,%d,%g), want (2,1,3)", m.Row[last], m.Col[last], m.Val[last])
	}
}

func TestNewCOORejectsOutOfRange(t *testing.T) {
	cases := []Coord{{3, 0, 1}, {0, 3, 1}, {-1, 0, 1}, {0, -1, 1}}
	for _, c := range cases {
		if _, err := NewCOO(3, 3, []Coord{c}); err == nil {
			t.Errorf("NewCOO accepted out-of-range coord %+v", c)
		}
	}
	if _, err := NewCOO(-1, 3, nil); err == nil {
		t.Error("NewCOO accepted negative dimension")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := MustCOO(5, 5, nil)
	if m.NNZ() != 0 || m.Density() != 0 {
		t.Fatalf("empty matrix NNZ=%d density=%g", m.NNZ(), m.Density())
	}
	csr := m.ToCSR()
	csc := m.ToCSC()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := csc.Validate(); err != nil {
		t.Fatal(err)
	}
	y := RefSpMV(m, make(Dense, 5))
	for _, v := range y {
		if v != 0 {
			t.Fatal("SpMV of empty matrix must be zero")
		}
	}
}

func TestConversionRoundTrip(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		rows := 1 + r.Intn(40)
		cols := 1 + r.Intn(40)
		m := MustCOO(rows, cols, randomCoords(r, rows, cols, r.Intn(200)))

		csr := m.ToCSR()
		if err := csr.Validate(); err != nil {
			t.Fatalf("trial %d: CSR invalid: %v", trial, err)
		}
		back := csr.ToCOO()
		assertEqualCOO(t, m, back)

		csc := m.ToCSC()
		if err := csc.Validate(); err != nil {
			t.Fatalf("trial %d: CSC invalid: %v", trial, err)
		}
		back2 := csc.ToCOO()
		assertEqualCOO(t, m, back2)
	}
}

func assertEqualCOO(t *testing.T, a, b *COO) {
	t.Helper()
	if a.R != b.R || a.C != b.C || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: %dx%d/%d vs %dx%d/%d", a.R, a.C, a.NNZ(), b.R, b.C, b.NNZ())
	}
	for k := range a.Val {
		if a.Row[k] != b.Row[k] || a.Col[k] != b.Col[k] || a.Val[k] != b.Val[k] {
			t.Fatalf("element %d differs: (%d,%d,%g) vs (%d,%d,%g)",
				k, a.Row[k], a.Col[k], a.Val[k], b.Row[k], b.Col[k], b.Val[k])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+r.Intn(30), 1+r.Intn(30)
		m := MustCOO(rows, cols, randomCoords(r, rows, cols, r.Intn(100)))
		tt := m.Transpose().Transpose()
		assertEqualCOO(t, m, tt)
	}
}

func TestOutDegreesMatchCSC(t *testing.T) {
	r := rng.New(13)
	m := MustCOO(20, 20, randomCoords(r, 20, 20, 150))
	deg := m.OutDegrees()
	csc := m.ToCSC()
	for j := 0; j < m.C; j++ {
		if got := csc.ColPtr[j+1] - csc.ColPtr[j]; got != deg[j] {
			t.Fatalf("column %d: degree %d vs CSC count %d", j, deg[j], got)
		}
	}
}

func TestSparseVecRoundTrip(t *testing.T) {
	v, err := NewSparseVec(10, []int32{7, 2, 5}, []float32{70, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	d := v.ToDense(0)
	if d[2] != 20 || d[5] != 50 || d[7] != 70 || d[0] != 0 {
		t.Fatalf("ToDense wrong: %v", d)
	}
	s := Sparsify(d, 0)
	if s.NNZ() != 3 || s.Idx[0] != 2 || s.Val[2] != 70 {
		t.Fatalf("Sparsify wrong: %+v", s)
	}
}

func TestSparseVecWithNonZeroFill(t *testing.T) {
	inf := float32(math.Inf(1))
	v, err := NewSparseVec(6, []int32{1, 4}, []float32{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	d := v.ToDense(inf)
	if d[0] != inf || d[1] != 3 || d[4] != 9 {
		t.Fatalf("fill not applied: %v", d)
	}
	s := Sparsify(d, inf)
	if s.NNZ() != 2 || s.Idx[0] != 1 || s.Idx[1] != 4 {
		t.Fatalf("Sparsify with fill wrong: %+v", s)
	}
	if got := DenseDensity(d, inf); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Fatalf("DenseDensity = %g, want 1/3", got)
	}
}

func TestSparseVecRejectsBadInput(t *testing.T) {
	if _, err := NewSparseVec(5, []int32{1, 1}, []float32{1, 2}); err == nil {
		t.Error("accepted duplicate index")
	}
	if _, err := NewSparseVec(5, []int32{5}, []float32{1}); err == nil {
		t.Error("accepted out-of-range index")
	}
	if _, err := NewSparseVec(5, []int32{1}, []float32{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

// Property: sparse and dense reference SpMV agree on the touched rows.
func TestRefSpMVSparseMatchesDense(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(60)
		m := MustCOO(n, n, randomCoords(r, n, n, r.Intn(4*n)))
		csc := m.ToCSC()

		var idx []int32
		var val []float32
		for i := 0; i < n; i++ {
			if r.Float64() < 0.3 {
				idx = append(idx, int32(i))
				val = append(val, r.Float32())
			}
		}
		sv, err := NewSparseVec(n, idx, val)
		if err != nil {
			t.Fatal(err)
		}
		dense := RefSpMV(m, sv.ToDense(0))
		sparse := RefSpMVSparse(csc, sv)
		got := sparse.ToDense(0)
		for i := 0; i < n; i++ {
			if math.Abs(float64(dense[i]-got[i])) > 1e-4 {
				t.Fatalf("trial %d row %d: dense %g sparse %g", trial, i, dense[i], got[i])
			}
		}
	}
}

// Property-based: round-tripping COO→CSR→COO and COO→CSC→COO is the
// identity for arbitrary (valid) inputs.
func TestQuickConversionIdentity(t *testing.T) {
	f := func(seed uint64, dims uint16, count uint16) bool {
		r := rng.New(seed)
		rows := 1 + int(dims%37)
		cols := 1 + int(dims/37%37)
		m := MustCOO(rows, cols, randomCoords(r, rows, cols, int(count%300)))
		a := m.ToCSR().ToCOO()
		b := m.ToCSC().ToCOO()
		if a.NNZ() != m.NNZ() || b.NNZ() != m.NNZ() {
			return false
		}
		for k := range m.Val {
			if a.Row[k] != m.Row[k] || a.Col[k] != m.Col[k] || a.Val[k] != m.Val[k] {
				return false
			}
			if b.Row[k] != m.Row[k] || b.Col[k] != m.Col[k] || b.Val[k] != m.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property-based: Sparsify∘ToDense is the identity on canonical sparse vectors.
func TestQuickSparsifyIdentity(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		r := rng.New(seed)
		n := 1 + int(n16%200)
		var idx []int32
		var val []float32
		for i := 0; i < n; i++ {
			if r.Float64() < 0.4 {
				v := r.Float32() + 0.1 // never equal to the fill value 0
				idx = append(idx, int32(i))
				val = append(val, v)
			}
		}
		sv, err := NewSparseVec(n, idx, val)
		if err != nil {
			return false
		}
		rt := Sparsify(sv.ToDense(0), 0)
		if rt.NNZ() != sv.NNZ() {
			return false
		}
		for k := range sv.Idx {
			if rt.Idx[k] != sv.Idx[k] || rt.Val[k] != sv.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := MustCOO(4, 4, []Coord{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 2}, {Row: 2, Col: 0, Val: 3}})

	// COO: break sort order, range, and slice lengths.
	bad := *base
	bad.Row = append([]int32{}, base.Row...)
	bad.Row[0], bad.Row[2] = bad.Row[2], bad.Row[0]
	if bad.Validate() == nil {
		t.Error("COO accepted broken sort order")
	}
	bad2 := *base
	bad2.Col = append([]int32{}, base.Col...)
	bad2.Col[1] = 99
	if bad2.Validate() == nil {
		t.Error("COO accepted out-of-range column")
	}
	bad3 := *base
	bad3.Val = bad3.Val[:2]
	if bad3.Validate() == nil {
		t.Error("COO accepted mismatched lengths")
	}

	// CSR: corrupt pointers and column order.
	csr := base.ToCSR()
	csr.RowPtr[2] = 99
	if csr.Validate() == nil {
		t.Error("CSR accepted corrupt RowPtr")
	}
	csr2 := base.ToCSR()
	csr2.RowPtr = csr2.RowPtr[:3]
	if csr2.Validate() == nil {
		t.Error("CSR accepted short RowPtr")
	}
	csr3 := base.ToCSR()
	csr3.Col[0] = 50
	if csr3.Validate() == nil {
		t.Error("CSR accepted out-of-range column")
	}

	// CSC likewise.
	csc := base.ToCSC()
	csc.ColPtr[1] = 99
	if csc.Validate() == nil {
		t.Error("CSC accepted corrupt ColPtr")
	}
	csc2 := base.ToCSC()
	csc2.ColPtr = csc2.ColPtr[:2]
	if csc2.Validate() == nil {
		t.Error("CSC accepted short ColPtr")
	}
	csc3 := base.ToCSC()
	csc3.Row[0] = -1
	if csc3.Validate() == nil {
		t.Error("CSC accepted negative row")
	}
}

func TestDensityAndCounts(t *testing.T) {
	m := MustCOO(4, 5, []Coord{{Row: 0, Col: 1, Val: 1}, {Row: 0, Col: 2, Val: 1}, {Row: 3, Col: 1, Val: 1}})
	if got, want := m.Density(), 3.0/20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("density %g, want %g", got, want)
	}
	empty := &COO{R: 0, C: 0}
	if empty.Density() != 0 {
		t.Fatal("empty density must be 0")
	}
	rn := m.RowNNZ()
	if rn[0] != 2 || rn[1] != 0 || rn[3] != 1 {
		t.Fatalf("RowNNZ %v", rn)
	}
}

func TestVectorClonesAreIndependent(t *testing.T) {
	d := Dense{1, 2, 3}
	dc := d.Clone()
	dc[0] = 9
	if d[0] != 1 {
		t.Fatal("Dense.Clone aliases")
	}
	sv, err := NewSparseVec(5, []int32{1, 3}, []float32{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	svc := sv.Clone()
	svc.Val[0] = 99
	svc.Idx[1] = 4
	if sv.Val[0] != 10 || sv.Idx[1] != 3 {
		t.Fatal("SparseVec.Clone aliases")
	}
	if sv.Density() != 2.0/5.0 {
		t.Fatalf("density %g", sv.Density())
	}
	zero := &SparseVec{}
	if zero.Density() != 0 {
		t.Fatal("zero-length density must be 0")
	}
}

func TestSparseVecValidateBranches(t *testing.T) {
	bad := &SparseVec{N: 5, Idx: []int32{1}, Val: []float32{1, 2}}
	if bad.Validate() == nil {
		t.Error("accepted mismatched lengths")
	}
	bad2 := &SparseVec{N: 5, Idx: []int32{3, 1}, Val: []float32{1, 2}}
	if bad2.Validate() == nil {
		t.Error("accepted descending indices")
	}
	bad3 := &SparseVec{N: 5, Idx: []int32{7}, Val: []float32{1}}
	if bad3.Validate() == nil {
		t.Error("accepted out-of-range index")
	}
}
