package matrix

import (
	"encoding/binary"
	"testing"

	"cosparse/internal/rng"
)

// FuzzDVCCSCDecode throws hostile bytes at the DVCCSC screen: an
// arbitrary header plus raw varint stream must never panic or overflow
// in Validate or ToCSC, and any stream Validate accepts must decode to
// a matrix that re-encodes to the identical bytes — the column-major
// mirror of FuzzDVCSRDecode.
func FuzzDVCCSCDecode(f *testing.F) {
	seedCase := func(rows, cols, n int, unit bool, seed uint64) []byte {
		r := rng.New(seed)
		var elems []Coord
		if unit {
			elems = unitCoords(r, rows, cols, n)
		} else {
			elems = randomCoords(r, rows, cols, n)
		}
		d, err := EncodeDVCCSC(MustCOO(rows, cols, elems))
		if err != nil {
			f.Fatal(err)
		}
		var hdr []byte
		for _, p := range d.Ptr {
			hdr = binary.AppendVarint(hdr, int64(p))
		}
		var off []byte
		for _, o := range d.ChunkOff {
			off = binary.AppendVarint(off, o)
		}
		in := binary.AppendUvarint(nil, uint64(d.R))
		in = binary.AppendUvarint(in, uint64(d.C))
		in = binary.AppendUvarint(in, uint64(d.ChunkCols))
		in = binary.AppendUvarint(in, uint64(len(hdr)))
		in = append(in, hdr...)
		in = binary.AppendUvarint(in, uint64(len(off)))
		in = append(in, off...)
		w := byte(0)
		if d.Weighted {
			w = 1
		}
		in = append(in, w)
		return append(in, d.Data...)
	}
	f.Add(seedCase(500, 3, 40, false, 1))
	f.Add(seedCase(700, 700, 900, true, 2))
	f.Add(seedCase(1, 1, 0, true, 3))
	f.Add([]byte{0, 0, 1, 0, 0, 0})

	f.Fuzz(func(t *testing.T, in []byte) {
		readUvarint := func() (uint64, bool) {
			v, n := binary.Uvarint(in)
			if n <= 0 {
				return 0, false
			}
			in = in[n:]
			return v, true
		}
		r, ok := readUvarint()
		if !ok {
			return
		}
		c, ok := readUvarint()
		if !ok {
			return
		}
		chunkCols, ok := readUvarint()
		if !ok {
			return
		}
		d := &DVCCSC{R: int(r % 4096), C: int(c % 2048), ChunkCols: int(chunkCols % 512)}
		hdrLen, ok := readUvarint()
		if !ok || hdrLen > uint64(len(in)) {
			return
		}
		hdr := in[:hdrLen]
		in = in[hdrLen:]
		for len(hdr) > 0 {
			v, n := binary.Varint(hdr)
			if n <= 0 {
				return
			}
			hdr = hdr[n:]
			d.Ptr = append(d.Ptr, int32(v))
		}
		offLen, ok := readUvarint()
		if !ok || offLen > uint64(len(in)) {
			return
		}
		off := in[:offLen]
		in = in[offLen:]
		for len(off) > 0 {
			v, n := binary.Varint(off)
			if n <= 0 {
				return
			}
			off = off[n:]
			d.ChunkOff = append(d.ChunkOff, v)
		}
		if len(in) == 0 {
			return
		}
		weighted := in[0] != 0
		d.Data = in[1:]
		if weighted && len(d.Ptr) == d.C+1 && d.C >= 0 {
			if nnz := d.Ptr[d.C]; nnz >= 0 && nnz < 1<<16 {
				d.Weighted = true
				d.Val = make([]float32, nnz)
				for i := range d.Val {
					d.Val[i] = float32(i%7) + 0.5
				}
			}
		}

		// ToCSC must be hostile-safe with or without the Validate screen.
		if _, err := d.ToCSC(); err != nil && d.Validate() == nil {
			t.Fatalf("Validate accepted a stream ToCSC rejects: %v", err)
		}
		if err := d.Validate(); err != nil {
			return
		}
		csc, err := d.ToCSC()
		if err != nil {
			t.Fatalf("validated stream failed to decode: %v", err)
		}
		// Rebuild the row-major matrix from the decoded columns; a
		// validated stream holds distinct in-range coordinates, so the
		// COO constructor must accept them.
		var elems []Coord
		d.DecodeCols(0, int32(d.C), func(row, col int32, val float32) {
			elems = append(elems, Coord{Row: row, Col: col, Val: val})
		})
		m, err := NewCOO(d.R, d.C, elems)
		if err != nil {
			t.Fatalf("decoded columns rejected by NewCOO: %v", err)
		}
		if m.NNZ() != len(csc.Val) {
			t.Fatalf("column decode found %d elements, ToCSC %d", m.NNZ(), len(csc.Val))
		}
		re, err := EncodeDVCCSC(m)
		if err != nil {
			t.Fatalf("decoded matrix failed to re-encode: %v", err)
		}
		if string(re.Data) != string(d.Data) {
			t.Fatalf("re-encode differs: %d bytes vs %d", len(re.Data), len(d.Data))
		}
		if re.NNZ() != d.NNZ() {
			t.Fatalf("re-encode nnz %d, want %d", re.NNZ(), d.NNZ())
		}
	})
}
