package batch

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoRunner delivers each lane its own payload, recording batch sizes.
func echoRunner(mu *sync.Mutex, sizes *[]int) Runner {
	return func(key string, lanes []*Lane) {
		mu.Lock()
		*sizes = append(*sizes, len(lanes))
		mu.Unlock()
		for _, l := range lanes {
			l.Deliver(l.Payload, nil)
		}
	}
}

func TestFullGroupRunsWithoutWindowWait(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	// A very long window: the test only passes quickly if a full group
	// detaches early.
	c := New(time.Hour, 4, echoRunner(&mu, &sizes))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Run(context.Background(), "k", i)
			if err != nil {
				t.Errorf("lane %d: %v", i, err)
			}
			if res != i {
				t.Errorf("lane %d got %v", i, res)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full group did not detach before the window")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("batch sizes = %v, want one batch of 4", sizes)
	}
}

func TestWindowGathersPartialGroup(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	c := New(50*time.Millisecond, 32, echoRunner(&mu, &sizes))

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Run(context.Background(), "k", i); err != nil {
				t.Errorf("lane %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 3 {
		t.Fatalf("delivered %d lanes across %v, want 3", total, sizes)
	}
}

func TestDistinctKeysDoNotFuse(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	c := New(50*time.Millisecond, 32, echoRunner(&mu, &sizes))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			if _, err := c.Run(context.Background(), key, i); err != nil {
				t.Errorf("lane %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 1 {
		t.Fatalf("batch sizes = %v, want two batches of 1", sizes)
	}
}

func TestZeroWindowMeansSolo(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	c := New(0, 32, echoRunner(&mu, &sizes))
	for i := 0; i < 3; i++ {
		if _, err := c.Run(context.Background(), "k", i); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 3 {
		t.Fatalf("batch sizes = %v, want three batches of 1", sizes)
	}
}

func TestPanickingRunnerDeliversError(t *testing.T) {
	c := New(0, 1, func(key string, lanes []*Lane) { panic("boom") })
	_, err := c.Run(context.Background(), "k", nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want runner panic", err)
	}
}

func TestForgetfulRunnerDeliversError(t *testing.T) {
	c := New(0, 1, func(key string, lanes []*Lane) {})
	_, err := c.Run(context.Background(), "k", nil)
	if err == nil || !strings.Contains(err.Error(), "without delivering") {
		t.Fatalf("err = %v, want delivery backstop", err)
	}
}

// A follower whose context is cancelled while the fused run executes
// stops waiting immediately; the batch itself keeps running (the
// leader executes the runner on its own goroutine).
func TestCancelledFollowerReturnsEarly(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	c := New(time.Hour, 2, func(key string, lanes []*Lane) {
		close(started)
		<-block
		for _, l := range lanes {
			l.Deliver(nil, nil)
		}
	})
	go c.Run(context.Background(), "k", nil) // leader
	time.Sleep(20 * time.Millisecond)        // let the leader register
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "k", nil) // follower fills the group
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not return")
	}
	close(block)
}

// TestSetWindowAppliesToNewGroups: the brownout controller widens the
// gather window at runtime; groups opened after the change use the new
// window, and a zero window degrades back to solo runs.
func TestSetWindowAppliesToNewGroups(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	c := New(0, 2, echoRunner(&mu, &sizes))

	// Window 0: every run is solo even under the fused path.
	if res, err := c.Run(context.Background(), "k", 1); err != nil || res != 1 {
		t.Fatalf("solo run: %v %v", res, err)
	}

	c.SetWindow(time.Hour)
	if got := c.Window(); got != time.Hour {
		t.Fatalf("Window() = %v after SetWindow, want 1h", got)
	}
	// With the widened window two concurrent submissions fuse (the
	// group fills at maxLanes=2, so the hour-long window never waits).
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res, err := c.Run(context.Background(), "k", i); err != nil || res != i {
				t.Errorf("fused lane %d: %v %v", i, res, err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("widened-window group did not detach when full")
	}

	// Back to 0: solo again.
	c.SetWindow(0)
	if res, err := c.Run(context.Background(), "k", 7); err != nil || res != 7 {
		t.Fatalf("post-reset solo run: %v %v", res, err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("batch sizes = %v, want [1 2 1]", sizes)
	}
}
