// Package batch implements the job-coalescing queue that sits between
// the service scheduler and the execution backends: compatible jobs
// submitted within a short gather window are grouped under a
// compatibility key and handed to a runner as one fused batch, which
// executes them as a blocked multi-vector (SpMM) run. The coalescer is
// generic over the payload — it knows nothing about graphs or
// algorithms, only about keys, windows and delivery.
//
// Grouping protocol: the first job to arrive under a key becomes the
// group's leader. It opens the gather window and waits; jobs arriving
// under the same key join the group until the window closes or the
// group fills. The leader then detaches the group atomically and
// invokes the runner; every lane — leader and followers alike — blocks
// only on its own delivery, so per-lane results, errors and
// cancellations stay independent.
package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Lane is one job's slot in a fused batch.
type Lane struct {
	// Ctx is the job's own context. The runner must honor it per lane:
	// a cancelled lane fails individually without disturbing the rest
	// of the batch.
	Ctx context.Context
	// Payload is the job the submitter enqueued, opaque to the
	// coalescer.
	Payload any

	res       any
	err       error
	delivered chan struct{}
	once      sync.Once
}

// Deliver hands the lane its result (or error). The first call wins;
// later calls are no-ops, so a runner's error broadcast cannot
// overwrite a result already delivered.
func (l *Lane) Deliver(res any, err error) {
	l.once.Do(func() {
		l.res = res
		l.err = err
		close(l.delivered)
	})
}

// Runner executes one detached batch. It must call Deliver on every
// lane; the coalescer backstops stragglers and panics so no submitter
// blocks forever.
type Runner func(key string, lanes []*Lane)

// group is one gathering batch: lanes accumulate until the leader's
// window fires or the group fills.
type group struct {
	lanes []*Lane
	full  chan struct{} // closed when len(lanes) reaches maxLanes
	// window is the gather window sampled when the leader opened the
	// group, so a concurrent SetWindow cannot desynchronize the
	// leader's registration decision from its wait.
	window time.Duration
}

// Coalescer groups compatible submissions into fused batches.
type Coalescer struct {
	// windowNs is the gather window in nanoseconds, atomic so a
	// brownout controller can widen it under load (more fusion per
	// traversal) without stopping traffic. A window adjusted from <= 0
	// to positive (or back) takes effect for new groups only.
	windowNs atomic.Int64
	maxLanes int
	run      Runner

	mu      sync.Mutex
	pending map[string]*group
}

// New builds a coalescer. window is the gather window the first job of
// a group holds open (<= 0 degenerates to batches of one, which is
// still useful for exercising the fused path); maxLanes caps the group
// size (values < 1 mean 1); run executes each detached batch.
func New(window time.Duration, maxLanes int, run Runner) *Coalescer {
	if maxLanes < 1 {
		maxLanes = 1
	}
	c := &Coalescer{
		maxLanes: maxLanes,
		run:      run,
		pending:  map[string]*group{},
	}
	c.windowNs.Store(int64(window))
	return c
}

// Window returns the current gather window.
func (c *Coalescer) Window() time.Duration {
	return time.Duration(c.windowNs.Load())
}

// SetWindow adjusts the gather window for groups opened from now on;
// in-flight groups keep the window they opened with.
func (c *Coalescer) SetWindow(window time.Duration) {
	c.windowNs.Store(int64(window))
}

// errNotDelivered backstops runners that return without delivering a
// lane (a bug, but one that must not strand a submitter).
var errNotDelivered = errors.New("batch: runner returned without delivering a result")

// Run submits payload under the compatibility key and blocks until its
// lane is delivered or ctx is cancelled. All jobs sharing a key that
// arrive within one gather window execute as one fused batch; the
// result is whatever the runner delivered to this job's lane.
func (c *Coalescer) Run(ctx context.Context, key string, payload any) (any, error) {
	lane := &Lane{Ctx: ctx, Payload: payload, delivered: make(chan struct{})}

	c.mu.Lock()
	g := c.pending[key]
	leader := g == nil
	if leader {
		g = &group{full: make(chan struct{}), window: c.Window()}
		if c.maxLanes > 1 && g.window > 0 {
			c.pending[key] = g
		}
	}
	g.lanes = append(g.lanes, lane)
	if len(g.lanes) >= c.maxLanes {
		delete(c.pending, key)
		close(g.full)
	}
	c.mu.Unlock()

	if leader {
		c.lead(ctx, key, g)
	}

	select {
	case <-lane.delivered:
		return lane.res, lane.err
	case <-ctx.Done():
		// The fused run may still execute this lane (it is already
		// grouped); the submitter just stops waiting. The runner's
		// per-lane context check fails the lane at the next iteration
		// boundary.
		return nil, ctx.Err()
	}
}

// lead holds the gather window open, detaches the group, and executes
// it. Runs on the leader's goroutine: the leader pays the window wait,
// followers only wait for delivery.
func (c *Coalescer) lead(ctx context.Context, key string, g *group) {
	if c.maxLanes > 1 && g.window > 0 {
		timer := time.NewTimer(g.window)
		select {
		case <-timer.C:
		case <-g.full:
			timer.Stop()
		case <-ctx.Done():
			// Leader cancelled mid-window: the batch still runs (other
			// lanes joined in good faith); the runner fails the
			// leader's lane via its context.
			timer.Stop()
		}
		c.mu.Lock()
		if c.pending[key] == g {
			delete(c.pending, key)
		}
		lanes := g.lanes
		c.mu.Unlock()
		c.execute(key, lanes)
		return
	}
	c.execute(key, g.lanes)
}

// execute invokes the runner with panic containment: a panicking
// runner delivers the panic as an error to every undelivered lane
// instead of deadlocking the batch.
func (c *Coalescer) execute(key string, lanes []*Lane) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("batch: runner panicked: %v", r)
			for _, l := range lanes {
				l.Deliver(nil, err)
			}
			return
		}
		for _, l := range lanes {
			l.Deliver(nil, errNotDelivered)
		}
	}()
	c.run(key, lanes)
}
