package kernels

import (
	"testing"

	"cosparse/internal/gen"
	"cosparse/internal/matrix"
	"cosparse/internal/semiring"
	"cosparse/internal/sim"
)

// Fig. 9 evaluates OP under shared-memory configurations too; the
// kernel must stay correct on every HWConfig, not just its natural
// pairings.
func TestOPCorrectUnderAllHWConfigs(t *testing.T) {
	m := gen.PowerLaw(300, 3000, 0.5, gen.UniformWeight, 61)
	csc := m.ToCSC()
	f := gen.Frontier(m.C, 0.05, 62)
	op := Operand{Ring: semiring.SpMV()}
	want := matrix.RefSpMVSparse(csc, f).ToDense(0)
	for _, hw := range []sim.HWConfig{sim.SC, sim.SCS, sim.PC, sim.PS} {
		c := cfg(2, 4, hw)
		part := NewOPPartitionCSC(csc, c.Geometry.Tiles, BalanceNNZ)
		got, res := RunOP(c, part, f, op)
		if res.Cycles <= 0 {
			t.Fatalf("%v: no cycles", hw)
		}
		dense := got.ToDense(0)
		for i := range want {
			if !approxEqual(want[i], dense[i]) {
				t.Fatalf("%v: row %d: want %g got %g", hw, i, want[i], dense[i])
			}
		}
	}
}

// IP must stay correct under the private configurations as well.
func TestIPCorrectUnderAllHWConfigs(t *testing.T) {
	m := gen.Uniform(200, 2000, gen.UniformWeight, 63)
	f := gen.Frontier(m.C, 0.8, 64)
	op := Operand{Ring: semiring.SpMV()}
	want := matrix.RefSpMV(m, f.ToDense(0))
	for _, hw := range []sim.HWConfig{sim.SC, sim.SCS, sim.PC, sim.PS} {
		c := cfg(2, 4, hw)
		vb := 0
		if hw == sim.SCS {
			vb = c.SPMWordsPerTile()
		}
		part := NewIPPartition(m, c.Geometry.TotalPEs(), vb, BalanceNNZ)
		got, _ := RunIP(c, part, f.ToDense(0), op)
		for i := range want {
			if !approxEqual(want[i], got[i]) {
				t.Fatalf("%v: row %d: want %g got %g", hw, i, want[i], got[i])
			}
		}
	}
}

func TestOPEmptyFrontier(t *testing.T) {
	m := gen.Uniform(100, 500, gen.Pattern, 65)
	csc := m.ToCSC()
	c := cfg(2, 4, sim.PC)
	part := NewOPPartitionCSC(csc, c.Geometry.Tiles, BalanceNNZ)
	out, res := RunOP(c, part, &matrix.SparseVec{N: 100}, Operand{Ring: semiring.SpMV()})
	if out.NNZ() != 0 {
		t.Fatalf("empty frontier produced %d outputs", out.NNZ())
	}
	if res.Cycles < 0 {
		t.Fatal("negative cycles")
	}
}

func TestOPSingletonFrontier(t *testing.T) {
	m := gen.Uniform(100, 800, gen.Pattern, 66)
	csc := m.ToCSC()
	c := cfg(2, 4, sim.PS)
	part := NewOPPartitionCSC(csc, c.Geometry.Tiles, BalanceNNZ)
	f, err := matrix.NewSparseVec(100, []int32{42}, []float32{2})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := RunOP(c, part, f, Operand{Ring: semiring.SpMV()})
	want := matrix.RefSpMVSparse(csc, f)
	if out.NNZ() != want.NNZ() {
		t.Fatalf("outputs %d, want %d", out.NNZ(), want.NNZ())
	}
}

func TestIPEmptyMatrix(t *testing.T) {
	m := matrix.MustCOO(50, 50, nil)
	c := cfg(1, 2, sim.SC)
	part := NewIPPartition(m, c.Geometry.TotalPEs(), 0, BalanceNNZ)
	out, res := RunIP(c, part, make(matrix.Dense, 50), Operand{Ring: semiring.SpMV()})
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty matrix produced nonzero output")
		}
	}
	if res.Cycles < 0 {
		t.Fatal("negative cycles")
	}
}

func TestIPSingleRowHotspot(t *testing.T) {
	// Every element in one row: the nnz-balanced cut cannot split a row,
	// so one PE gets everything — validate correctness, not balance.
	elems := make([]matrix.Coord, 200)
	for i := range elems {
		elems[i] = matrix.Coord{Row: 7, Col: int32(i % 100), Val: 1}
	}
	m := matrix.MustCOO(100, 100, elems)
	c := cfg(2, 4, sim.SC)
	part := NewIPPartition(m, c.Geometry.TotalPEs(), 0, BalanceNNZ)
	if err := part.Validate(m); err != nil {
		t.Fatal(err)
	}
	x := make(matrix.Dense, 100)
	for i := range x {
		x[i] = 1
	}
	out, _ := RunIP(c, part, x, Operand{Ring: semiring.SpMV()})
	want := matrix.RefSpMV(m, x)
	for i := range want {
		if !approxEqual(want[i], out[i]) {
			t.Fatalf("row %d: %g want %g", i, out[i], want[i])
		}
	}
}

func TestOPDuplicateRowsAcrossPEs(t *testing.T) {
	// A row receiving contributions from columns assigned to different
	// PEs exercises the LCP's cross-stream reduce.
	elems := []matrix.Coord{}
	for col := int32(0); col < 16; col++ {
		elems = append(elems, matrix.Coord{Row: 3, Col: col, Val: 1})
	}
	m := matrix.MustCOO(8, 16, elems)
	csc := m.ToCSC()
	c := cfg(1, 4, sim.PC)
	part := NewOPPartitionCSC(csc, 1, BalanceNNZ)
	idx := make([]int32, 16)
	val := make([]float32, 16)
	for i := range idx {
		idx[i] = int32(i)
		val[i] = 1
	}
	f, err := matrix.NewSparseVec(16, idx, val)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := RunOP(c, part, f, Operand{Ring: semiring.SpMV()})
	if out.NNZ() != 1 || out.Idx[0] != 3 || out.Val[0] != 16 {
		t.Fatalf("out = %+v, want row 3 = 16", out)
	}
}

func TestRunIPPanicsOnBadFrontier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched frontier length")
		}
	}()
	m := gen.Uniform(50, 100, gen.Pattern, 67)
	c := cfg(1, 2, sim.SC)
	part := NewIPPartition(m, 2, 0, BalanceNNZ)
	RunIP(c, part, make(matrix.Dense, 10), Operand{Ring: semiring.SpMV()})
}

func TestRunOPPanicsOnWrongTileCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on tile mismatch")
		}
	}()
	m := gen.Uniform(50, 100, gen.Pattern, 68)
	part := NewOPPartitionCSC(m.ToCSC(), 4, BalanceNNZ)
	RunOP(cfg(2, 2, sim.PC), part, &matrix.SparseVec{N: 50}, Operand{Ring: semiring.SpMV()})
}
