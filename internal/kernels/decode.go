package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/sim"
)

// Compressed-domain execution model (Params.DecodePEs): when the
// resident matrix store is compressed, each PE's matrix stream is
// fetched from HBM at its *compressed* byte length and run through a
// per-PE decode unit that produces the raw (row, col, val) operand
// stream the pass bodies consume. The model is applied as a post-run
// adjustment to the machine's result rather than inside the
// event-level machine: the functional execution and every other
// timing interaction are untouched, which is what guarantees sim
// timings stay bit-identical when the flag is off (and that values
// never change either way).
//
// Charged per stream unit (one PE's row chunk for IP, one PE's
// frontier-column gather per tile for OP):
//   - compressed lines  = ceil(encoded bytes / BlockBytes)
//   - decode cycles     = compressed lines × DecodeCyclesPerLine
//   - HBM read lines    = base − raw matrix lines + compressed lines
//     (clamped at zero; raw lines are what the machine actually
//     charged for the decoded stream)
//
// The makespan only grows if some unit's decode pipe (plus its
// DecodeFillCycles ramp-up) is slower than the whole base run — decode
// overlaps compute otherwise. Decode-unit energy is intentionally not
// modeled; the HBM line delta already dominates the energy story and
// keeping EnergyJ untouched keeps the power model's meaning stable.

// decodeUnit is one compressed stream fetch: its encoded size and the
// raw operand bytes the machine charged for the same elements.
type decodeUnit struct {
	comp, raw int64
}

// applyDecodePEs folds the decode-unit model into a run result.
// passes scales every unit (the fused IP kernel re-streams the matrix
// once per lane block). No-op unless cfg enables the model and the
// partition was cut from a compressed store (units non-nil).
func applyDecodePEs(cfg sim.Config, units []decodeUnit, passes int64, res *sim.Result) {
	par := cfg.Params
	if !par.DecodePEs || len(units) == 0 || passes <= 0 {
		return
	}
	block := int64(par.BlockBytes)
	if block <= 0 {
		return
	}
	var compLines, rawLines, maxUnitLines int64
	for _, u := range units {
		cl := (u.comp + block - 1) / block
		rl := (u.raw + block - 1) / block
		compLines += cl * passes
		rawLines += rl * passes
		if cl > maxUnitLines {
			maxUnitLines = cl
		}
	}
	res.Stats.DecodeCycles += compLines * par.DecodeCyclesPerLine
	res.Stats.HBMCompressedLines += compLines
	res.Stats.HBMSavedLines += rawLines - compLines
	adj := res.Stats.HBMLines - rawLines + compLines
	if adj < 0 {
		adj = 0
	}
	res.Stats.HBMLines = adj
	// Decode units run in parallel, one per PE stream, overlapped with
	// compute: the makespan stretches only when the slowest unit's pipe
	// cannot keep up with the whole base run.
	if pipe := maxUnitLines*par.DecodeCyclesPerLine + par.DecodeFillCycles; pipe > res.Cycles {
		res.Cycles = pipe
		res.Stats.Cycles = pipe
	}
}

// ipDecodeUnits builds the per-PE stream units for the IP kernel: the
// compressed bytes of each PE's row chunk against the 12 raw bytes per
// (row, col, val) element the machine streamed. Nil when the source
// store was uncompressed (the model then has nothing to re-charge).
func ipDecodeUnits(part *IPPartition) []decodeUnit {
	if part.PEStreamBytes == nil {
		return nil
	}
	units := make([]decodeUnit, part.NumPEs)
	for pe := 0; pe < part.NumPEs; pe++ {
		units[pe] = decodeUnit{
			comp: part.PEStreamBytes[pe],
			raw:  12 * int64(part.NNZOfPE(pe)),
		}
	}
	return units
}

// opDecodeUnits builds the per-(tile, PE) gather units for the OP
// kernel: each PE fetches its frontier columns' full encoded streams
// from the compressed column store (a decode unit cannot slice a
// varint column, so the whole column is fetched per tile), against the
// 8 raw bytes per (row, val) element of the tile's slice it actually
// consumed. The comparison is honest in both directions — on tall
// partitions the per-tile re-fetch can cost more lines than the raw
// slices, and HBMSavedLines goes negative.
func opDecodeUnits(part *OPPartition, f *matrix.SparseVec, peCols []int32) []decodeUnit {
	if part.ColBytes == nil {
		return nil
	}
	units := make([]decodeUnit, 0, part.Tiles*(len(peCols)-1))
	for t := 0; t < part.Tiles; t++ {
		colPtr := part.ColPtr[t]
		for pe := 0; pe+1 < len(peCols); pe++ {
			var u decodeUnit
			for k := peCols[pe]; k < peCols[pe+1]; k++ {
				j := f.Idx[k]
				u.comp += int64(part.ColBytes[j])
				u.raw += 8 * int64(colPtr[j+1]-colPtr[j])
			}
			if u.comp > 0 || u.raw > 0 {
				units = append(units, u)
			}
		}
	}
	return units
}
