package kernels

import (
	"runtime"
	"sync"

	"cosparse/internal/matrix"
)

// This file is the native execution backend's functional layer: the
// same generic pass bodies the simulator walks (ip.go, op.go,
// passes.go), instantiated with NopProbe and driven goroutine-parallel
// across GOMAXPROCS workers — the chunking pattern of
// baseline.RunCSRSpMV. Parallel units are always disjoint in their
// writes (PE row partitions for IP, tiles for OP, contiguous element
// ranges for the merges), so no locks are needed, and every unit runs
// in the same internal order as under the simulator, so results are
// bit-identical across backends — including order-sensitive float32
// reductions (PR, CF).

// parallelChunks splits [0, n) into at most GOMAXPROCS contiguous
// chunks, runs fn(chunk, lo, hi) on each from its own goroutine, and
// returns the chunk count (so callers can pre-size per-chunk result
// slots).
func parallelChunks(n int, fn func(c int, lo, hi int32)) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	b := splitEven(n, w)
	if w == 1 {
		fn(0, b[0], b[1])
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for c := 0; c < w; c++ {
		go func(c int) {
			defer wg.Done()
			fn(c, b[c], b[c+1])
		}(c)
	}
	wg.Wait()
	return w
}

// NativeIP runs the inner-product pass on the host, parallel over PE
// row partitions (disjoint output rows → race-free). The SPM path is
// disabled: the native frontier always reads straight from the slice,
// which is the same functional value the cooperative fill would stage.
func NativeIP(part *IPPartition, x matrix.Dense, op Operand) matrix.Dense {
	if len(x) != part.C {
		panic("kernels: NativeIP frontier length mismatch")
	}
	part.Materialize()
	out := make(matrix.Dense, part.R)
	for i := range out {
		out[i] = op.Ring.Identity
	}
	parallelChunks(part.NumPEs, func(_ int, lo, hi int32) {
		for pe := int(lo); pe < int(hi); pe++ {
			ipPEPass(NopProbe{}, part, pe, x, out, op, false, 0, 1, ipAddrs{})
		}
	})
	return out
}

// NativeOP runs the outer-product pass on the host, parallel over tiles
// (disjoint output row ranges). Within a tile the PE column passes and
// the LCP merge run sequentially, preserving the simulator's reduce
// order; pesPerTile must match the sim geometry so the frontier split
// (and hence the merge order) is identical across backends.
func NativeOP(part *OPPartition, f *matrix.SparseVec, op Operand, pesPerTile int) *matrix.SparseVec {
	if f.N != part.C {
		panic("kernels: NativeOP frontier length mismatch")
	}
	part.Materialize()
	if pesPerTile < 1 {
		pesPerTile = 1
	}
	peCols := splitEven(f.NNZ(), pesPerTile)
	tileOut := make([][]opPair, part.Tiles)
	parallelChunks(part.Tiles, func(_ int, tlo, thi int32) {
		stagingAddr := make([]uint64, pesPerTile)
		for t := int(tlo); t < int(thi); t++ {
			staged := make([][]opPair, pesPerTile)
			for pe := 0; pe < pesPerTile; pe++ {
				lo, hi := peCols[pe], peCols[pe+1]
				if lo >= hi {
					continue
				}
				staged[pe] = opPEPass(NopProbe{}, part, t, f, op, lo, hi, 0, opPEAddrs{})
			}
			tileOut[t] = opLCPPass(NopProbe{}, staged, op, stagingAddr, 0)
		}
	})
	out := &matrix.SparseVec{N: part.R}
	for t := 0; t < part.Tiles; t++ {
		for _, e := range tileOut[t] {
			out.Idx = append(out.Idx, e.row)
			out.Val = append(out.Val, e.val)
		}
	}
	return out
}

// NativeMergeDense is the host post-IP merge, parallel over contiguous
// element ranges. Semantics match RunMergeDense: vals is updated in
// place and returned with the extracted frontier (nil for
// dense-frontier rings).
func NativeMergeDense(contrib, vals matrix.Dense, op Operand) (matrix.Dense, *matrix.SparseVec) {
	n := len(vals)
	cost := mergeCost(op)
	extract := !op.Ring.DenseFrontier
	merged := make(matrix.Dense, n)
	perChunk := make([][]int32, runtime.GOMAXPROCS(0)+1)
	used := parallelChunks(n, func(c int, lo, hi int32) {
		perChunk[c] = mergeDenseRange(NopProbe{}, lo, hi, contrib, vals, merged, op, cost, extract, mergeAddrs{})
	})
	copy(vals, merged)
	var frontier *matrix.SparseVec
	if extract {
		frontier = assembleFrontier(n, perChunk[:used], vals)
	}
	return vals, frontier
}

// NativeScatterMerge is the host post-OP merge, parallel over
// contiguous ranges of the sparse contribution (contrib.Idx is sorted
// and unique, so ranges write disjoint destinations).
func NativeScatterMerge(contrib *matrix.SparseVec, vals matrix.Dense, op Operand) (matrix.Dense, *matrix.SparseVec) {
	cost := mergeCost(op)
	extract := !op.Ring.DenseFrontier
	newVals := make([]float32, contrib.NNZ())
	perChunk := make([][]int32, runtime.GOMAXPROCS(0)+1)
	used := parallelChunks(contrib.NNZ(), func(c int, lo, hi int32) {
		perChunk[c] = scatterMergeRange(NopProbe{}, lo, hi, contrib, vals, newVals, op, cost, extract, scatterAddrs{})
	})
	for k, i := range contrib.Idx {
		vals[i] = newVals[k]
	}
	var frontier *matrix.SparseVec
	if extract {
		frontier = assembleScatterFrontier(contrib, perChunk[:used], vals)
	}
	return vals, frontier
}

// NativeFrontierDense is the host dense-frontier conversion. Unlike the
// simulator — where clear and set ranges from different PEs interleave
// in simulated time — the native pass clears everything before setting
// anything, which is the order that preserves every current-frontier
// value when an index appears in both lists.
func NativeFrontierDense(buf matrix.Dense, clear, set *matrix.SparseVec, op Operand) matrix.Dense {
	if clear != nil {
		parallelChunks(clear.NNZ(), func(_ int, lo, hi int32) {
			for k := lo; k < hi; k++ {
				buf[clear.Idx[k]] = op.Ring.Identity
			}
		})
	}
	if set != nil {
		parallelChunks(set.NNZ(), func(_ int, lo, hi int32) {
			for k := lo; k < hi; k++ {
				buf[set.Idx[k]] = set.Val[k]
			}
		})
	}
	return buf
}
