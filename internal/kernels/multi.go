package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/sim"
)

// Blocked multi-vector (SpMM) execution: k frontiers/value vectors ride
// one matrix traversal. The matrix stream — the dominant traffic of the
// IP pass — is fetched once per lane block instead of once per job,
// which is the amortization that makes fusing concurrent same-graph
// jobs worthwhile (SpMV → SpMM, the standard blocked multi-vector
// technique from the SpMV literature).
//
// Correctness contract: each lane keeps its own row accumulator, its
// own activity mask and its own flush schedule, so the per-lane
// sequence of MatOp/Reduce applications — and therefore every float32
// rounding step — is exactly the sequence the solo pass would execute.
// Fused results are bit-identical to solo runs by construction, on both
// backends.

// LaneBlock is the number of fused vectors processed per matrix
// traversal. Eight 4-byte lanes keep the per-element working set (one
// frontier value, one accumulator and one output line per lane) inside
// a few cache lines while amortizing the 12-byte COO triple stream
// 8-to-1; larger batches loop over blocks.
const LaneBlock = 8

// ipBlockPEPass runs one PE's share of the inner-product pass for one
// lane block (len(xs) ≤ LaneBlock): the COO row partition is streamed
// once, and every element is applied to each lane's frontier in lane
// order. Per-lane state (current row, accumulator) is kept separate so
// each lane's operation order matches ipPEPass exactly. The SPM path is
// not used — fused runs read frontiers from cacheable memory, which is
// functionally identical.
func ipBlockPEPass[P Probe](p P, part *IPPartition, pe int, xs, outs []matrix.Dense, ops []Operand, matAddr uint64, as []ipAddrs) {
	k := len(xs)
	var curRow [LaneBlock]int32
	var acc [LaneBlock]float32
	for l := 0; l < k; l++ {
		curRow[l] = -1
	}

	flush := func(l int) {
		if curRow[l] < 0 {
			return
		}
		addr := as[l].out + uint64(curRow[l])*4
		p.Load(addr)
		p.Compute(ops[l].Ring.ReduceCost)
		outs[l][curRow[l]] = ops[l].Ring.Reduce(outs[l][curRow[l]], acc[l])
		p.Store(addr)
		curRow[l] = -1
	}

	for _, seg := range part.Segs[pe] {
		for e := seg.Lo; e < seg.Hi; e++ {
			row, col, val := part.Row[e], part.Col[e], part.Val[e]
			// One triple stream serves every lane in the block.
			for w := 0; w < 3; w++ {
				p.LoadStream(matAddr + uint64(e)*12 + uint64(w)*4)
			}
			for l := 0; l < k; l++ {
				op := &ops[l]
				p.Load(as[l].vec + uint64(col)*4)
				// Per-lane work skipping: a source inactive in this
				// lane's frontier contributes nothing to this lane even
				// when other lanes are active on it.
				if !op.Ring.DenseFrontier && xs[l][col] == op.Ring.Identity {
					continue
				}
				if op.Ring.NeedsSrcDeg {
					p.Load(as[l].deg + uint64(col)*4)
				}
				if row != curRow[l] {
					flush(l)
					curRow[l] = row
					if op.Ring.NeedsDstVal {
						p.Load(as[l].prev + uint64(row)*4)
					}
					p.Compute(op.Ring.MatOpCost)
					acc[l] = op.Ring.MatOp(val, xs[l][col], op.ctxFor(row, col))
					continue
				}
				p.Compute(op.Ring.MatOpCost + op.Ring.ReduceCost)
				acc[l] = op.Ring.Reduce(acc[l], op.Ring.MatOp(val, xs[l][col], op.ctxFor(row, col)))
			}
		}
		for l := 0; l < k; l++ {
			flush(l)
		}
	}
}

// RunIPMulti executes k fused inner-product SpMVs on one machine: the
// matrix partition is streamed once per lane block of LaneBlock
// vectors, so the simulated cost reflects the amortized traversal. Each
// lane's output vector is exactly what RunIP would have produced for
// that lane alone.
func RunIPMulti(cfg sim.Config, part *IPPartition, xs []matrix.Dense, ops []Operand) ([]matrix.Dense, sim.Result) {
	k := len(xs)
	if k == 0 {
		return nil, sim.Result{}
	}
	if len(ops) != k {
		panic("kernels: RunIPMulti lane count mismatch")
	}
	for l := range xs {
		if len(xs[l]) != part.C {
			panic("kernels: RunIPMulti frontier length mismatch")
		}
	}
	part.Materialize()
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	matAddr := arena.Alloc(3 * len(part.Val))
	as := make([]ipAddrs, k)
	for l := range as {
		as[l].mat = matAddr
		as[l].vec = arena.Alloc(part.C)
		as[l].out = arena.Alloc(part.R)
		if ops[l].Ring.NeedsSrcDeg {
			as[l].deg = arena.Alloc(part.C)
		}
		if ops[l].Ring.NeedsDstVal {
			as[l].prev = arena.Alloc(part.R)
		}
	}

	outs := make([]matrix.Dense, k)
	for l := range outs {
		outs[l] = make(matrix.Dense, part.R)
		for i := range outs[l] {
			outs[l][i] = ops[l].Ring.Identity
		}
	}

	prog := sim.Program{PE: func(p *sim.Proc) {
		pe := p.GlobalPE()
		if pe >= part.NumPEs {
			return
		}
		for b := 0; b < k; b += LaneBlock {
			e := b + LaneBlock
			if e > k {
				e = k
			}
			ipBlockPEPass(p, part, pe, xs[b:e], outs[b:e], ops[b:e], matAddr, as[b:e])
		}
	}}

	res := m.Run(prog)
	applyDecodePEs(cfg, ipDecodeUnits(part), int64((k+LaneBlock-1)/LaneBlock), &res)
	return outs, res
}
