package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"cosparse/internal/gen"
	"cosparse/internal/matrix"
	"cosparse/internal/semiring"
	"cosparse/internal/sim"
)

func cfg(t, p int, hw sim.HWConfig) sim.Config {
	return sim.NewConfig(sim.Geometry{Tiles: t, PEsPerTile: p}, hw)
}

func approxEqual(a, b float32) bool {
	if math.IsInf(float64(a), 1) && math.IsInf(float64(b), 1) {
		return true
	}
	d := math.Abs(float64(a - b))
	scale := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return d <= 1e-3*math.Max(scale, 1)
}

// ---------- partitioning ----------

func TestIPPartitionValid(t *testing.T) {
	for _, b := range []Balancing{BalanceNNZ, BalanceRows} {
		for _, vb := range []int{0, 64, 1000} {
			m := gen.PowerLaw(300, 3000, 0.6, gen.UniformWeight, 1)
			p := NewIPPartition(m, 8, vb, b)
			if err := p.Validate(m); err != nil {
				t.Fatalf("%v vb=%d: %v", b, vb, err)
			}
		}
	}
}

func TestIPPartitionBalancesNNZ(t *testing.T) {
	m := gen.PowerLaw(1000, 20000, 0.6, gen.Pattern, 2)
	bal := NewIPPartition(m, 16, 0, BalanceNNZ)
	naive := NewIPPartition(m, 16, 0, BalanceRows)
	maxOf := func(p *IPPartition) int {
		mx := 0
		for pe := 0; pe < 16; pe++ {
			if n := p.NNZOfPE(pe); n > mx {
				mx = n
			}
		}
		return mx
	}
	if maxOf(bal) >= maxOf(naive) {
		t.Fatalf("balanced max %d not below naive max %d on a skewed matrix", maxOf(bal), maxOf(naive))
	}
	// Balanced partitions should be within ~2x of the ideal share unless
	// single rows dominate.
	ideal := m.NNZ() / 16
	if maxOf(bal) > 3*ideal {
		t.Fatalf("balanced max %d vs ideal %d", maxOf(bal), ideal)
	}
}

func TestIPPartitionMorePEsThanRows(t *testing.T) {
	m := gen.Uniform(8, 30, gen.Pattern, 3)
	p := NewIPPartition(m, 32, 16, BalanceNNZ)
	if err := p.Validate(m); err != nil {
		t.Fatal(err)
	}
	total := 0
	for pe := 0; pe < 32; pe++ {
		total += p.NNZOfPE(pe)
	}
	if total != m.NNZ() {
		t.Fatalf("elements lost: %d vs %d", total, m.NNZ())
	}
}

func TestOPPartitionValid(t *testing.T) {
	m := gen.PowerLaw(400, 5000, 0.5, gen.UniformWeight, 4)
	csc := m.ToCSC()
	for _, b := range []Balancing{BalanceNNZ, BalanceRows} {
		p := NewOPPartitionCSC(csc, 4, b)
		if err := p.Validate(csc); err != nil {
			t.Fatalf("%v: %v", b, err)
		}
	}
}

func TestOPPartitionBalance(t *testing.T) {
	m := gen.PowerLaw(1000, 20000, 0.6, gen.Pattern, 5)
	csc := m.ToCSC()
	bal := NewOPPartitionCSC(csc, 8, BalanceNNZ)
	naive := NewOPPartitionCSC(csc, 8, BalanceRows)
	maxOf := func(p *OPPartition) int {
		mx := 0
		for t := 0; t < p.Tiles; t++ {
			if n := p.NNZOfTile(t); n > mx {
				mx = n
			}
		}
		return mx
	}
	if maxOf(bal) >= maxOf(naive) {
		t.Fatalf("balanced tile max %d not below naive %d", maxOf(bal), maxOf(naive))
	}
}

func TestSplitEven(t *testing.T) {
	b := splitEven(10, 4)
	if b[0] != 0 || b[4] != 10 {
		t.Fatalf("bounds %v", b)
	}
	for k := 0; k < 4; k++ {
		sz := b[k+1] - b[k]
		if sz < 2 || sz > 3 {
			t.Fatalf("chunk %d size %d", k, sz)
		}
	}
	if got := splitEven(0, 4); got[4] != 0 {
		t.Fatalf("empty split %v", got)
	}
}

// ---------- functional correctness: IP & OP vs reference ----------

func opFor(ring semiring.Semiring, m *matrix.COO, prev matrix.Dense) Operand {
	op := Operand{Ring: ring, Ctx: semiring.Ctx{Alpha: 0.15, Beta: 0.01, Lambda: 0.05}}
	if ring.NeedsSrcDeg {
		op.Deg = m.OutDegrees()
	}
	if ring.NeedsDstVal {
		op.Prev = prev
	}
	return op
}

// refContrib computes the raw kernel contribution (before merging) for
// a sparse frontier directly from the definition.
func refContrib(m *matrix.COO, f *matrix.SparseVec, op Operand) matrix.Dense {
	out := make(matrix.Dense, m.R)
	touched := make([]bool, m.R)
	x := f.ToDense(op.Ring.Identity)
	active := make([]bool, m.C)
	for _, i := range f.Idx {
		active[i] = true
	}
	for k := range m.Val {
		r, c := m.Row[k], m.Col[k]
		if !active[c] {
			continue
		}
		cand := op.Ring.MatOp(m.Val[k], x[c], op.ctxFor(r, c))
		if touched[r] {
			out[r] = op.Ring.Reduce(out[r], cand)
		} else {
			out[r] = cand
			touched[r] = true
		}
	}
	for i := range out {
		if !touched[i] {
			out[i] = op.Ring.Identity
		}
	}
	return out
}

func TestIPMatchesReferenceAllSemirings(t *testing.T) {
	m := gen.PowerLaw(200, 2000, 0.5, gen.UniformWeight, 7)
	prev := make(matrix.Dense, m.R)
	for i := range prev {
		prev[i] = float32(i%7) + 1
	}
	f := gen.Frontier(m.C, 1.0, 8) // dense frontier: IP sees every column
	for _, ring := range []semiring.Semiring{semiring.SpMV(), semiring.BFS(), semiring.SSSP(), semiring.PR(), semiring.CF()} {
		op := opFor(ring, m, prev)
		want := refContrib(m, f, op)
		c := cfg(2, 4, sim.SC)
		part := NewIPPartition(m, c.Geometry.TotalPEs(), c.SPMWordsPerTile(), BalanceNNZ)
		got, res := RunIP(c, part, f.ToDense(ring.Identity), op)
		if res.Cycles <= 0 {
			t.Fatalf("%s: no cycles", ring.Name)
		}
		for i := range want {
			if !approxEqual(want[i], got[i]) {
				t.Fatalf("%s: row %d: want %g got %g", ring.Name, i, want[i], got[i])
			}
		}
	}
}

func TestIPSCSMatchesSC(t *testing.T) {
	m := gen.Uniform(300, 4000, gen.UniformWeight, 9)
	f := gen.Frontier(m.C, 0.5, 10)
	ring := semiring.SpMV()
	op := opFor(ring, m, nil)
	x := f.ToDense(ring.Identity)

	cSC := cfg(2, 4, sim.SC)
	pSC := NewIPPartition(m, cSC.Geometry.TotalPEs(), cSC.SPMWordsPerTile(), BalanceNNZ)
	outSC, _ := RunIP(cSC, pSC, x, op)

	cSCS := cfg(2, 4, sim.SCS)
	pSCS := NewIPPartition(m, cSCS.Geometry.TotalPEs(), cSCS.SPMWordsPerTile(), BalanceNNZ)
	outSCS, _ := RunIP(cSCS, pSCS, x, op)

	for i := range outSC {
		if !approxEqual(outSC[i], outSCS[i]) {
			t.Fatalf("row %d: SC %g vs SCS %g", i, outSC[i], outSCS[i])
		}
	}
}

func TestOPMatchesReferenceAllSemirings(t *testing.T) {
	m := gen.PowerLaw(200, 2000, 0.5, gen.UniformWeight, 11)
	csc := m.ToCSC()
	prev := make(matrix.Dense, m.R)
	for i := range prev {
		prev[i] = float32(i%5) + 2
	}
	f := gen.Frontier(m.C, 0.1, 12)
	for _, ring := range []semiring.Semiring{semiring.SpMV(), semiring.BFS(), semiring.SSSP(), semiring.PR(), semiring.CF()} {
		op := opFor(ring, m, prev)
		want := refContrib(m, f, op)
		for _, hw := range []sim.HWConfig{sim.PC, sim.PS} {
			c := cfg(2, 4, hw)
			part := NewOPPartitionCSC(csc, c.Geometry.Tiles, BalanceNNZ)
			got, res := RunOP(c, part, f, op)
			if res.Cycles <= 0 {
				t.Fatalf("%s/%v: no cycles", ring.Name, hw)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s/%v: invalid sparse output: %v", ring.Name, hw, err)
			}
			dense := got.ToDense(ring.Identity)
			for i := range want {
				if !approxEqual(want[i], dense[i]) {
					t.Fatalf("%s/%v: row %d: want %g got %g", ring.Name, hw, i, want[i], dense[i])
				}
			}
		}
	}
}

func TestOPSkipsWorkAtLowDensity(t *testing.T) {
	m := gen.Uniform(2000, 40000, gen.Pattern, 13)
	csc := m.ToCSC()
	ring := semiring.SpMV()
	op := opFor(ring, m, nil)
	c := cfg(2, 8, sim.PC)
	part := NewOPPartitionCSC(csc, c.Geometry.Tiles, BalanceNNZ)

	_, sparse := RunOP(c, part, gen.Frontier(m.C, 0.01, 14), op)
	_, denser := RunOP(c, part, gen.Frontier(m.C, 0.2, 14), op)
	if sparse.Cycles*4 > denser.Cycles {
		t.Fatalf("OP cycles did not scale with density: %d (1%%) vs %d (20%%)", sparse.Cycles, denser.Cycles)
	}
}

func TestIPCostIndependentOfDensity(t *testing.T) {
	m := gen.Uniform(2000, 40000, gen.Pattern, 15)
	ring := semiring.SpMV()
	op := opFor(ring, m, nil)
	c := cfg(2, 8, sim.SC)
	part := NewIPPartition(m, c.Geometry.TotalPEs(), c.SPMWordsPerTile(), BalanceNNZ)

	_, r1 := RunIP(c, part, gen.Frontier(m.C, 0.01, 16).ToDense(0), op)
	_, r2 := RunIP(c, part, gen.Frontier(m.C, 1.0, 16).ToDense(0), op)
	ratio := float64(r2.Cycles) / float64(r1.Cycles)
	if ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("IP cycles vary with density by %.2fx; it streams the whole matrix either way", ratio)
	}
}

// ---------- merge passes ----------

func TestRunMergeDenseSSSP(t *testing.T) {
	ring := semiring.SSSP()
	inf := ring.Identity
	vals := matrix.Dense{0, inf, 5, 3}
	contrib := matrix.Dense{inf, 2, 7, 1} // row1 improves, row2 worsens (kept), row3 improves
	op := Operand{Ring: ring}
	c := cfg(1, 2, sim.SC)
	newVals, frontier, res := RunMergeDense(c, contrib, vals, op)
	want := matrix.Dense{0, 2, 5, 1}
	for i := range want {
		if newVals[i] != want[i] {
			t.Fatalf("vals[%d] = %g, want %g", i, newVals[i], want[i])
		}
	}
	if frontier == nil || frontier.NNZ() != 2 || frontier.Idx[0] != 1 || frontier.Idx[1] != 3 {
		t.Fatalf("frontier = %+v, want {1,3}", frontier)
	}
	if res.Cycles <= 0 {
		t.Fatal("merge pass charged no cycles")
	}
}

func TestRunMergeDenseBFSOnceOnly(t *testing.T) {
	ring := semiring.BFS()
	inf := ring.Identity
	vals := matrix.Dense{7, inf, inf}
	contrib := matrix.Dense{1, 4, inf} // vertex 0 already settled: must keep 7
	op := Operand{Ring: ring}
	newVals, frontier, _ := RunMergeDense(cfg(1, 2, sim.SC), contrib, vals, op)
	if newVals[0] != 7 {
		t.Fatalf("settled vertex changed: %g", newVals[0])
	}
	if newVals[1] != 4 {
		t.Fatalf("new vertex not set: %g", newVals[1])
	}
	if frontier.NNZ() != 1 || frontier.Idx[0] != 1 {
		t.Fatalf("frontier = %+v", frontier)
	}
}

func TestRunMergeDensePRVecOp(t *testing.T) {
	ring := semiring.PR()
	op := Operand{Ring: ring, Ctx: semiring.Ctx{Alpha: 0.15}}
	vals := matrix.Dense{0.5, 0.5}
	contrib := matrix.Dense{0.2, 0}
	newVals, frontier, _ := RunMergeDense(cfg(1, 2, sim.SC), contrib, vals, op)
	if frontier != nil {
		t.Fatal("PR must keep a dense frontier")
	}
	if !approxEqual(newVals[0], 0.15+0.85*0.2) || !approxEqual(newVals[1], 0.15) {
		t.Fatalf("PR VecOp wrong: %v", newVals)
	}
}

func TestRunScatterMergeMatchesDense(t *testing.T) {
	ring := semiring.SSSP()
	n := 50
	vals := make(matrix.Dense, n)
	for i := range vals {
		vals[i] = float32(10 + i%5)
	}
	sv, err := matrix.NewSparseVec(n, []int32{3, 17, 40}, []float32{1, 99, 2})
	if err != nil {
		t.Fatal(err)
	}
	valsCopy := vals.Clone()
	op := Operand{Ring: ring}
	newVals, frontier, _ := RunScatterMerge(cfg(1, 2, sim.PC), sv, vals, op)
	if newVals[3] != 1 || newVals[40] != 2 {
		t.Fatalf("improvements not applied: %g %g", newVals[3], newVals[40])
	}
	if newVals[17] != valsCopy[17] {
		t.Fatalf("worse contribution overwrote value: %g", newVals[17])
	}
	if frontier.NNZ() != 2 {
		t.Fatalf("frontier = %+v", frontier)
	}
	for i := range newVals {
		if i != 3 && i != 40 && newVals[i] != valsCopy[i] {
			t.Fatalf("untouched vertex %d changed", i)
		}
	}
}

func TestRunFrontierDense(t *testing.T) {
	ring := semiring.SSSP()
	op := Operand{Ring: ring}
	n := 20
	buf := make(matrix.Dense, n)
	for i := range buf {
		buf[i] = ring.Identity
	}
	f1, _ := matrix.NewSparseVec(n, []int32{2, 5}, []float32{1, 2})
	buf, _ = RunFrontierDense(cfg(1, 2, sim.SC), buf, nil, f1, op)
	if buf[2] != 1 || buf[5] != 2 {
		t.Fatal("scatter failed")
	}
	f2, _ := matrix.NewSparseVec(n, []int32{7}, []float32{3})
	buf, res := RunFrontierDense(cfg(1, 2, sim.SC), buf, f1, f2, op)
	if buf[2] != ring.Identity || buf[5] != ring.Identity || buf[7] != 3 {
		t.Fatalf("clear+scatter failed: %v", buf)
	}
	if res.Stats.Stores == 0 {
		t.Fatal("conversion charged no stores")
	}
}

// ---------- heap ----------

func TestSimHeapSortsUnderBothModes(t *testing.T) {
	for _, hw := range []sim.HWConfig{sim.PC, sim.PS} {
		c := cfg(1, 1, hw)
		m := sim.MustMachine(c)
		arena := sim.NewArena(c.Params)
		base := arena.Alloc(4096)
		var got []int32
		m.Run(sim.Program{PE: func(p *sim.Proc) {
			spm := c.SPMWordsPerPE() / heapEntryWords
			h := &opHeap[*sim.Proc]{p: p, spmEntries: spm, base: base}
			seq := []int32{5, 3, 9, 1, 7, 3, 8, 0, 2, 6}
			for _, v := range seq {
				h.push(heapEntry{row: v, cur: v})
			}
			for h.len() > 0 {
				got = append(got, h.popMin().row)
			}
		}})
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("%v: heap output not sorted: %v", hw, got)
			}
		}
		if len(got) != 10 {
			t.Fatalf("%v: lost entries: %v", hw, got)
		}
	}
}

func TestSimHeapSpillStillSorts(t *testing.T) {
	// More entries than the SPM can hold: the tail must spill to memory
	// and ordering must survive.
	c := cfg(1, 1, sim.PS)
	m := sim.MustMachine(c)
	arena := sim.NewArena(c.Params)
	base := arena.Alloc(65536)
	n := c.SPMWordsPerPE() // 1024 words -> 512 entries; push 1024
	var got []int32
	m.Run(sim.Program{PE: func(p *sim.Proc) {
		h := &opHeap[*sim.Proc]{p: p, spmEntries: c.SPMWordsPerPE() / heapEntryWords, base: base}
		x := uint64(12345)
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.push(heapEntry{row: int32(x % 100000), cur: int32(i)})
		}
		for h.len() > 0 {
			got = append(got, h.popMin().row)
		}
	}})
	if len(got) != n {
		t.Fatalf("lost entries: %d of %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("spilled heap output not sorted")
		}
	}
}

// ---------- property-based: IP ≡ OP ≡ reference ----------

func TestQuickIPOPAgree(t *testing.T) {
	f := func(seed uint64, n16, nnz16 uint16, d8 uint8) bool {
		n := 20 + int(n16%200)
		nnz := 1 + int(nnz16)%(4*n)
		density := 0.02 + float64(d8%50)/100
		m := gen.PowerLaw(n, nnz, 0.5, gen.UniformWeight, seed)
		fr := gen.Frontier(n, density, seed+1)
		ring := semiring.SpMV()
		op := Operand{Ring: ring}

		c := cfg(2, 2, sim.SC)
		part := NewIPPartition(m, c.Geometry.TotalPEs(), c.SPMWordsPerTile(), BalanceNNZ)
		ipOut, _ := RunIP(c, part, fr.ToDense(0), op)

		co := cfg(2, 2, sim.PC)
		opart := NewOPPartitionCSC(m.ToCSC(), co.Geometry.Tiles, BalanceNNZ)
		opOut, _ := RunOP(co, opart, fr, op)
		opDense := opOut.ToDense(0)

		want := matrix.RefSpMV(m, fr.ToDense(0))
		for i := range want {
			if !approxEqual(want[i], ipOut[i]) || !approxEqual(want[i], opDense[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// ---------- shape checks the figures rely on ----------

func TestOPBeatsIPOnVerySparseFrontier(t *testing.T) {
	m := gen.Uniform(4000, 80000, gen.Pattern, 20)
	ring := semiring.SpMV()
	op := Operand{Ring: ring}
	f := gen.Frontier(m.C, 0.002, 21)

	cIP := cfg(2, 8, sim.SC)
	part := NewIPPartition(m, cIP.Geometry.TotalPEs(), cIP.SPMWordsPerTile(), BalanceNNZ)
	_, rIP := RunIP(cIP, part, f.ToDense(0), op)

	cOP := cfg(2, 8, sim.PC)
	opart := NewOPPartitionCSC(m.ToCSC(), cOP.Geometry.Tiles, BalanceNNZ)
	_, rOP := RunOP(cOP, opart, f, op)

	if rOP.Cycles >= rIP.Cycles {
		t.Fatalf("OP (%d cycles) not faster than IP (%d) at density 0.002", rOP.Cycles, rIP.Cycles)
	}
}

func TestIPBeatsOPOnDenseFrontier(t *testing.T) {
	m := gen.Uniform(4000, 80000, gen.Pattern, 22)
	ring := semiring.SpMV()
	op := Operand{Ring: ring}
	f := gen.Frontier(m.C, 0.5, 23)

	cIP := cfg(2, 8, sim.SC)
	part := NewIPPartition(m, cIP.Geometry.TotalPEs(), cIP.SPMWordsPerTile(), BalanceNNZ)
	_, rIP := RunIP(cIP, part, f.ToDense(0), op)

	cOP := cfg(2, 8, sim.PC)
	opart := NewOPPartitionCSC(m.ToCSC(), cOP.Geometry.Tiles, BalanceNNZ)
	_, rOP := RunOP(cOP, opart, f, op)

	if rIP.Cycles >= rOP.Cycles {
		t.Fatalf("IP (%d cycles) not faster than OP (%d) at density 0.5", rIP.Cycles, rOP.Cycles)
	}
}

func TestBalancingHelpsIPOnPowerLaw(t *testing.T) {
	m := gen.PowerLaw(2000, 40000, 0.7, gen.Pattern, 24)
	ring := semiring.SpMV()
	op := Operand{Ring: ring}
	f := gen.Frontier(m.C, 1.0, 25)
	c := cfg(2, 8, sim.SC)

	bal := NewIPPartition(m, c.Geometry.TotalPEs(), c.SPMWordsPerTile(), BalanceNNZ)
	_, rBal := RunIP(c, bal, f.ToDense(0), op)
	naive := NewIPPartition(m, c.Geometry.TotalPEs(), c.SPMWordsPerTile(), BalanceRows)
	_, rNaive := RunIP(c, naive, f.ToDense(0), op)

	if rBal.Cycles >= rNaive.Cycles {
		t.Fatalf("balancing did not help on a power-law matrix: %d vs %d cycles", rBal.Cycles, rNaive.Cycles)
	}
}

// Property: IP and OP agree under the min-plus (SSSP) semiring too —
// the reduction order independence must hold beyond (+,×).
func TestQuickIPOPAgreeMinPlus(t *testing.T) {
	f := func(seed uint64, n16 uint16, d8 uint8) bool {
		n := 30 + int(n16%150)
		density := 0.05 + float64(d8%40)/100
		m := gen.PowerLaw(n, 6*n, 0.5, gen.UniformWeight, seed)
		fr := gen.Frontier(n, density, seed+1)
		ring := semiring.SSSP()
		prev := make(matrix.Dense, n)
		for i := range prev {
			prev[i] = float32(5 + i%7)
		}
		op := Operand{Ring: ring, Prev: prev}

		c := cfg(2, 2, sim.SC)
		part := NewIPPartition(m, c.Geometry.TotalPEs(), c.SPMWordsPerTile(), BalanceNNZ)
		ipOut, _ := RunIP(c, part, fr.ToDense(ring.Identity), op)

		co := cfg(2, 2, sim.PS)
		opart := NewOPPartitionCSC(m.ToCSC(), co.Geometry.Tiles, BalanceNNZ)
		opOut, _ := RunOP(co, opart, fr, op)
		opDense := opOut.ToDense(ring.Identity)

		want := refContrib(m, fr, op)
		for i := range want {
			if !approxEqual(want[i], ipOut[i]) || !approxEqual(want[i], opDense[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
