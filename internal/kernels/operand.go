package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/semiring"
)

// Operand bundles the inputs shared by both kernels: the semiring, its
// hyperparameter context, the source out-degrees (PR) and the previous
// iteration's destination values (SSSP, CF).
type Operand struct {
	Ring semiring.Semiring
	Ctx  semiring.Ctx
	Deg  []int32      // out-degree per source vertex; may be nil if !NeedsSrcDeg
	Prev matrix.Dense // previous values; may be nil if !NeedsDstVal
}

func (op Operand) ctxFor(dst, src int32) semiring.Ctx {
	c := op.Ctx
	c.Src = src
	if op.Ring.NeedsDstVal {
		c.DstVal = op.Prev[dst]
	}
	if op.Ring.NeedsSrcDeg {
		c.SrcDeg = op.Deg[src]
	}
	return c
}
