package kernels

import "cosparse/internal/matrix"

// Host-side fused kernels. The IP side uses a specialized probe-free
// inner loop (nativeIPPELanes) that keeps each PE's COO share
// cache-resident across lanes; the OP side reuses the shared pass
// bodies with NopProbe, lanes sequential per tile. Both preserve the
// solo passes' per-lane float operation order exactly, so fused
// results stay bit-identical to solo runs on every lane.

// NativeIPMulti runs k fused inner-product passes on the host,
// parallel over PE row partitions. Each PE's COO share is traversed
// once per lane while it is cache-resident, through a specialized
// probe-free loop — the host-side form of the blocked SpMM
// amortization (the sim path charges the shared stream explicitly
// instead; see RunIPMulti).
func NativeIPMulti(part *IPPartition, xs []matrix.Dense, ops []Operand) []matrix.Dense {
	k := len(xs)
	if k == 0 {
		return nil
	}
	if len(ops) != k {
		panic("kernels: NativeIPMulti lane count mismatch")
	}
	for l := range xs {
		if len(xs[l]) != part.C {
			panic("kernels: NativeIPMulti frontier length mismatch")
		}
	}
	part.Materialize()
	outs := make([]matrix.Dense, k)
	for l := range outs {
		outs[l] = make(matrix.Dense, part.R)
		for i := range outs[l] {
			outs[l][i] = ops[l].Ring.Identity
		}
	}
	parallelChunks(part.NumPEs, func(_ int, lo, hi int32) {
		for pe := int(lo); pe < int(hi); pe++ {
			nativeIPPELanes(part, pe, xs, outs, ops)
		}
	})
	return outs
}

// nativeIPPELanes streams one PE's COO share once per lane with a
// tight scalar loop: no probe calls, no simulated-address arithmetic,
// the semiring closures and the lane's context hoisted out of the
// element loop. The per-lane sequence of MatOp/Reduce applications —
// including the flush-on-row-change schedule per segment — is exactly
// ipPEPass's, so every float32 rounding step matches the solo pass and
// fused results stay bit-identical. The fused win on the host is
// locality plus overhead: a PE's share is a few KB of COO that stays
// L1-resident across all k lanes, and each lane pays only the loads
// and operator applications a hand-written SpMM inner loop would.
func nativeIPPELanes(part *IPPartition, pe int, xs, outs []matrix.Dense, ops []Operand) {
	for l := range xs {
		op := &ops[l]
		ring := &op.Ring
		matOp, reduce := ring.MatOp, ring.Reduce
		ident := ring.Identity
		skip := !ring.DenseFrontier
		needsDeg, needsPrev := ring.NeedsSrcDeg, ring.NeedsDstVal
		x, out := xs[l], outs[l]
		ctx := op.Ctx
		for _, seg := range part.Segs[pe] {
			curRow := int32(-1)
			var acc float32
			for e := seg.Lo; e < seg.Hi; e++ {
				col := part.Col[e]
				xv := x[col]
				if skip && xv == ident {
					continue
				}
				row, val := part.Row[e], part.Val[e]
				ctx.Src = col
				if needsDeg {
					ctx.SrcDeg = op.Deg[col]
				}
				if row != curRow {
					if curRow >= 0 {
						out[curRow] = reduce(out[curRow], acc)
					}
					curRow = row
					if needsPrev {
						ctx.DstVal = op.Prev[row]
					}
					acc = matOp(val, xv, ctx)
					continue
				}
				acc = reduce(acc, matOp(val, xv, ctx))
			}
			if curRow >= 0 {
				out[curRow] = reduce(out[curRow], acc)
			}
		}
	}
}

// NativeOPMulti runs k outer-product passes on the host, parallel over
// tiles with the lanes sequential within each tile — the tile's CSC
// slice is traversed back to back for all k frontiers while it is
// cache-resident. Each lane's column split and merge order match
// NativeOP (and hence RunOP) exactly, so per-lane results are
// bit-identical to solo runs.
func NativeOPMulti(part *OPPartition, fs []*matrix.SparseVec, ops []Operand, pesPerTile int) []*matrix.SparseVec {
	k := len(fs)
	if k == 0 {
		return nil
	}
	if len(ops) != k {
		panic("kernels: NativeOPMulti lane count mismatch")
	}
	if pesPerTile < 1 {
		pesPerTile = 1
	}
	part.Materialize()
	peColsPerLane := make([][]int32, k)
	for l := range fs {
		if fs[l].N != part.C {
			panic("kernels: NativeOPMulti frontier length mismatch")
		}
		peColsPerLane[l] = splitEven(fs[l].NNZ(), pesPerTile)
	}
	tileOut := make([][][]opPair, k) // [lane][tile]
	for l := range tileOut {
		tileOut[l] = make([][]opPair, part.Tiles)
	}
	parallelChunks(part.Tiles, func(_ int, tlo, thi int32) {
		stagingAddr := make([]uint64, pesPerTile)
		for t := int(tlo); t < int(thi); t++ {
			for l := 0; l < k; l++ {
				peCols := peColsPerLane[l]
				staged := make([][]opPair, pesPerTile)
				for pe := 0; pe < pesPerTile; pe++ {
					lo, hi := peCols[pe], peCols[pe+1]
					if lo >= hi {
						continue
					}
					staged[pe] = opPEPass(NopProbe{}, part, t, fs[l], ops[l], lo, hi, 0, opPEAddrs{})
				}
				tileOut[l][t] = opLCPPass(NopProbe{}, staged, ops[l], stagingAddr, 0)
			}
		}
	})
	outs := make([]*matrix.SparseVec, k)
	for l := 0; l < k; l++ {
		out := &matrix.SparseVec{N: part.R}
		for t := 0; t < part.Tiles; t++ {
			for _, e := range tileOut[l][t] {
				out.Idx = append(out.Idx, e.row)
				out.Val = append(out.Val, e.val)
			}
		}
		outs[l] = out
	}
	return outs
}
