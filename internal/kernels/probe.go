package kernels

// Probe observes the memory and compute events a kernel pass issues.
// The pass bodies in this package are written once against this
// interface and instantiated twice: the sim backend plugs in *sim.Proc,
// so every Load/Store/Compute advances the trace-driven machine exactly
// as the pre-split kernels did, and the native backend plugs in
// NopProbe, which erases the events and leaves only the functional
// work. Because both backends run the same pass body in the same order,
// their functional results are bit-identical by construction — even for
// order-sensitive float32 reductions (PR, CF).
//
// The method set mirrors *sim.Proc verbatim; adding an event kind here
// means teaching both implementations about it.
type Probe interface {
	// Compute charges n ALU operations.
	Compute(n int)
	// Load issues a cacheable word read at addr.
	Load(addr uint64)
	// Store issues a cacheable word write at addr.
	Store(addr uint64)
	// LoadStream issues a prefetch-friendly sequential word read.
	LoadStream(addr uint64)
	// SPMLoad reads a word from the tile/PE scratchpad.
	SPMLoad(offsetWords int)
	// SPMStore writes a word to the tile/PE scratchpad.
	SPMStore(offsetWords int)
}

// NopProbe is the native backend's probe: every event is free. It is a
// zero-size value type so the generic pass bodies specialize to a shape
// where these calls compile to nothing.
type NopProbe struct{}

func (NopProbe) Compute(int)       {}
func (NopProbe) Load(uint64)       {}
func (NopProbe) Store(uint64)      {}
func (NopProbe) LoadStream(uint64) {}
func (NopProbe) SPMLoad(int)       {}
func (NopProbe) SPMStore(int)      {}
