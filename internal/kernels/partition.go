// Package kernels implements the two reconfigurable SpMV dataflows of
// CoSPARSE (§III-A) on the sim machine: the inner-product (IP) kernel
// streaming row-major COO against a dense frontier, and the
// outer-product (OP) kernel merge-sorting CSC columns selected by a
// sparse frontier. Both are generic over a semiring (Table I), execute
// functionally, and charge every memory access to the simulated
// hierarchy.
//
// It also implements the paper's workload-balancing strategies
// (§III-B): static row partitioning with equal nonzeros per PE/tile,
// vertical blocking (vblocks) sized to the scratchpad, and dynamic
// distribution of frontier nonzeros across the PEs of a tile.
package kernels

import (
	"fmt"
	"sync"

	"cosparse/internal/matrix"
)

// Balancing selects the static partitioning strategy, the knob
// evaluated in the paper's Fig. 7.
type Balancing int

const (
	// BalanceNNZ cuts row partitions with equal numbers of stored
	// elements ("w/ partition" in Fig. 7) — the paper's scheme.
	BalanceNNZ Balancing = iota
	// BalanceRows cuts equal row ranges regardless of their population
	// ("w/o partition"), the naive baseline.
	BalanceRows
)

// String names the strategy as in the paper's figures.
func (b Balancing) String() string {
	if b == BalanceNNZ {
		return "w/ partition"
	}
	return "w/o partition"
}

// cutRows splits [0, rows) into `parts` contiguous ranges. With
// BalanceNNZ the cut points equalize stored elements (at row
// granularity, so no output races between partitions); with BalanceRows
// they equalize row counts. Returns parts+1 boundaries.
func cutRows(ptr []int32, rows, parts int, b Balancing) []int32 {
	bounds := make([]int32, parts+1)
	bounds[parts] = int32(rows)
	if b == BalanceRows {
		for k := 1; k < parts; k++ {
			bounds[k] = int32(rows * k / parts)
		}
		return bounds
	}
	nnz := int64(ptr[rows])
	row := 0
	for k := 1; k < parts; k++ {
		target := nnz * int64(k) / int64(parts)
		for row < rows && int64(ptr[row]) < target {
			row++
		}
		bounds[k] = int32(row)
	}
	return bounds
}

// Seg is one vblock-contiguous run of a PE's elements in the reordered
// IP element stream.
type Seg struct {
	VB     int32 // vblock index (column range VB*width .. (VB+1)*width)
	Lo, Hi int32 // element index range in the partition's arrays
}

// IPPartition is the preprocessed matrix layout for the IP kernel: each
// PE owns a row partition whose elements are stored contiguously,
// grouped by vblock and row-major within a vblock — the memory layout a
// real implementation would produce at load time (the paper performs
// the same preprocessing before execution; its cost is off the critical
// per-iteration path, like Ligra's preprocessed CSR/CSC pair).
type IPPartition struct {
	R, C        int
	NumPEs      int
	VBlockWords int // columns per vblock; 0 = no vertical blocking
	NumVBlocks  int
	Row, Col    []int32
	Val         []float32
	PEPtr       []int32 // per-PE element range: elements of PE p are [PEPtr[p], PEPtr[p+1])
	Segs        [][]Seg // per PE, ordered by vblock
	RowBounds   []int32 // the row cuts, exposed for tests
	// SrcFormat is the resident format of the store the partition was
	// cut from, and PEStreamBytes the encoded byte length of each PE's
	// row chunk in that store (nil for uncompressed sources) — the
	// per-stream fetch sizes the decode-PE sim model charges.
	SrcFormat     matrix.Format
	PEStreamBytes []int64

	src matrix.Store
	ptr []int32 // the source's row prefix, for lazy decode
	mat sync.Once
}

// NewIPPartition builds the IP layout for a machine with totalPEs
// processing elements and the given vblock width in vector words
// (usually Config.SPMWordsPerTile(); pass 0 to disable blocking).
//
// It is the format seam's consumer: any matrix.Store works. Only the
// row cuts and per-PE element ranges are computed here (from the row
// prefix — no decode); each PE's row chunk is decoded lazily through
// Store.DecodeRows on first kernel use, into the same row-major
// element stream the COO baseline holds, then bucketed by vblock
// exactly as before — so the resulting layout (and therefore every
// kernel's operand order, results, and sim timings) is byte-identical
// whatever the resident format was, and a partition that is never run
// never decodes the graph.
func NewIPPartition(m matrix.Store, totalPEs, vblockWords int, b Balancing) *IPPartition {
	if totalPEs < 1 {
		panic("kernels: totalPEs must be >= 1")
	}
	rows, cols := m.Dims()
	ptr := m.RowPtr()
	bounds := cutRows(ptr, rows, totalPEs, b)
	p := &IPPartition{
		R: rows, C: cols,
		NumPEs:      totalPEs,
		VBlockWords: vblockWords,
		NumVBlocks:  1,
		PEPtr:       make([]int32, totalPEs+1),
		Segs:        make([][]Seg, totalPEs),
		RowBounds:   bounds,
		SrcFormat:   m.Format(),
		src:         m,
		ptr:         ptr,
	}
	if vblockWords > 0 {
		p.NumVBlocks = (cols + vblockWords - 1) / vblockWords
	}
	for pe := 0; pe < totalPEs; pe++ {
		p.PEPtr[pe+1] = ptr[bounds[pe+1]]
	}
	return p
}

// Materialize decodes the partition's element arrays from the source
// store if they have not been decoded yet. Every kernel entry point
// calls it; it is idempotent and safe for concurrent use.
func (p *IPPartition) Materialize() { p.mat.Do(p.materialize) }

func (p *IPPartition) materialize() {
	m, ptr := p.src, p.ptr
	nnz := int(ptr[p.RowBounds[p.NumPEs]])
	p.Row = make([]int32, 0, nnz)
	p.Col = make([]int32, 0, nnz)
	p.Val = make([]float32, 0, nnz)
	sizer, _ := m.(interface{ EncodedRowBytes(lo, hi int32) int64 })
	if sizer != nil && p.SrcFormat != matrix.FormatCSR {
		p.PEStreamBytes = make([]int64, p.NumPEs)
	}
	vbOf := func(col int32) int32 {
		if p.VBlockWords <= 0 {
			return 0
		}
		return col / int32(p.VBlockWords)
	}
	// Scratch for one PE's decoded row chunk, reused across PEs.
	var cRow, cCol []int32
	var cVal []float32
	for pe := 0; pe < p.NumPEs; pe++ {
		lo, hi := p.RowBounds[pe], p.RowBounds[pe+1]
		n := int(ptr[hi] - ptr[lo])
		cRow, cCol, cVal = cRow[:0], cCol[:0], cVal[:0]
		m.DecodeRows(lo, hi, func(row, col int32, val float32) {
			cRow = append(cRow, row)
			cCol = append(cCol, col)
			cVal = append(cVal, val)
		})
		if len(cVal) != n {
			panic(fmt.Sprintf("kernels: PE %d decoded %d elements, RowPtr promises %d", pe, len(cVal), n))
		}
		if p.PEStreamBytes != nil {
			p.PEStreamBytes[pe] = sizer.EncodedRowBytes(lo, hi)
		}
		// Bucket the PE's (already row-major) element range by vblock,
		// preserving row-major order inside each bucket.
		counts := make([]int32, p.NumVBlocks+1)
		for k := 0; k < n; k++ {
			counts[vbOf(cCol[k])+1]++
		}
		for v := 0; v < p.NumVBlocks; v++ {
			counts[v+1] += counts[v]
		}
		base := int32(len(p.Row))
		p.Row = append(p.Row, make([]int32, n)...)
		p.Col = append(p.Col, make([]int32, n)...)
		p.Val = append(p.Val, make([]float32, n)...)
		next := make([]int32, p.NumVBlocks)
		copy(next, counts[:p.NumVBlocks])
		for k := 0; k < n; k++ {
			v := vbOf(cCol[k])
			at := base + next[v]
			next[v]++
			p.Row[at] = cRow[k]
			p.Col[at] = cCol[k]
			p.Val[at] = cVal[k]
		}
		for v := 0; v < p.NumVBlocks; v++ {
			if counts[v+1] > counts[v] {
				p.Segs[pe] = append(p.Segs[pe], Seg{VB: int32(v), Lo: base + counts[v], Hi: base + counts[v+1]})
			}
		}
	}
}

// Validate checks the partition invariants: every source element
// appears exactly once, segments are disjoint and vblock-local, and
// rows do not cross PE boundaries.
func (p *IPPartition) Validate(m *matrix.COO) error {
	p.Materialize()
	if len(p.Val) != m.NNZ() {
		return fmt.Errorf("kernels: partition has %d elements, matrix %d", len(p.Val), m.NNZ())
	}
	count := make(map[[2]int32]int, m.NNZ())
	for k := range m.Val {
		count[[2]int32{m.Row[k], m.Col[k]}]++
	}
	for k := range p.Val {
		key := [2]int32{p.Row[k], p.Col[k]}
		count[key]--
		if count[key] < 0 {
			return fmt.Errorf("kernels: element (%d,%d) duplicated or foreign", key[0], key[1])
		}
	}
	for pe, segs := range p.Segs {
		lastVB := int32(-1)
		for _, s := range segs {
			if s.VB <= lastVB {
				return fmt.Errorf("kernels: PE %d segments not vblock-ordered", pe)
			}
			lastVB = s.VB
			if s.Lo < p.PEPtr[pe] || s.Hi > p.PEPtr[pe+1] || s.Lo >= s.Hi {
				return fmt.Errorf("kernels: PE %d segment [%d,%d) outside its range", pe, s.Lo, s.Hi)
			}
			for k := s.Lo; k < s.Hi; k++ {
				if r := p.Row[k]; r < p.RowBounds[pe] || r >= p.RowBounds[pe+1] {
					return fmt.Errorf("kernels: PE %d holds row %d outside [%d,%d)", pe, r, p.RowBounds[pe], p.RowBounds[pe+1])
				}
				if p.VBlockWords > 0 && p.Col[k]/int32(p.VBlockWords) != s.VB {
					return fmt.Errorf("kernels: PE %d vblock %d holds column %d", pe, s.VB, p.Col[k])
				}
			}
		}
	}
	return nil
}

// NNZOfPE returns the number of elements assigned to a PE, the quantity
// the balancing strategy equalizes.
func (p *IPPartition) NNZOfPE(pe int) int {
	return int(p.PEPtr[pe+1] - p.PEPtr[pe])
}

// OPPartition is the preprocessed layout for the OP kernel: each tile
// owns a row partition stored as a tile-local CSC slice (only the rows
// in the tile's range appear in each column). Frontier nonzeros are
// distributed across the tile's PEs dynamically at run time.
type OPPartition struct {
	R, C      int
	Tiles     int
	RowBounds []int32   // per-tile row cuts
	ColPtr    [][]int32 // per tile, length C+1
	Row       [][]int32
	Val       [][]float32
	// SrcFormat is the resident format of the row store the partition
	// was cut from. ColBytes, present only when the column store is
	// compressed (DVCCSC), is the encoded byte length of every column —
	// the per-column fetch sizes the decode-PE sim model charges when
	// the OP kernel gathers frontier columns.
	SrcFormat matrix.Format
	ColBytes  []int32

	cs  matrix.ColStore
	mat sync.Once
}

// NewOPPartition builds per-tile CSC slices for the OP kernel from any
// matrix.Store. Uncompressed stores convert to plain CSC; compressed
// ones re-encode into the compressed column store (DVCCSC) so no
// uncompressed whole-graph CSC is ever materialized. Only the row cuts
// are computed here; the tile slices decode lazily on first kernel
// use, column by column, into exactly the layout the eager builder
// produced — results and sim timings are byte-identical whatever the
// resident format was.
func NewOPPartition(m matrix.Store, tiles int, b Balancing) *OPPartition {
	if tiles < 1 {
		panic("kernels: tiles must be >= 1")
	}
	rows, cols := m.Dims()
	bounds := cutRows(m.RowPtr(), rows, tiles, b)
	return &OPPartition{
		R: rows, C: cols,
		Tiles:     tiles,
		RowBounds: bounds,
		SrcFormat: m.Format(),
		cs:        matrix.ColStoreOf(m),
	}
}

// NewOPPartitionCSC builds the partition directly from an existing CSC
// matrix (benchmark drivers that already hold one).
func NewOPPartitionCSC(m *matrix.CSC, tiles int, b Balancing) *OPPartition {
	if tiles < 1 {
		panic("kernels: tiles must be >= 1")
	}
	// Row population for the balanced cut.
	ptr := make([]int32, m.R+1)
	for _, r := range m.Row {
		ptr[r+1]++
	}
	for i := 0; i < m.R; i++ {
		ptr[i+1] += ptr[i]
	}
	bounds := cutRows(ptr, m.R, tiles, b)
	return &OPPartition{
		R: m.R, C: m.C,
		Tiles:     tiles,
		RowBounds: bounds,
		SrcFormat: matrix.FormatCSR,
		cs:        m,
	}
}

// Materialize decodes the per-tile CSC slices from the column store if
// they have not been decoded yet. Every kernel entry point calls it;
// it is idempotent and safe for concurrent use.
func (p *OPPartition) Materialize() { p.mat.Do(p.materialize) }

func (p *OPPartition) materialize() {
	cs := p.cs
	p.ColPtr = make([][]int32, p.Tiles)
	p.Row = make([][]int32, p.Tiles)
	p.Val = make([][]float32, p.Tiles)
	for t := 0; t < p.Tiles; t++ {
		p.ColPtr[t] = make([]int32, p.C+1)
	}
	// One streaming pass over the column store: each element lands in
	// the tile owning its row (column-major order is preserved per
	// tile), and per-tile column boundaries close as the stream
	// advances to a new column — the same slices the old per-tile
	// column-filter loop built, in one pass instead of Tiles.
	cur := int32(-1) // highest ColPtr index already closed
	closeTo := func(j int32) {
		for x := cur + 1; x <= j; x++ {
			for t := 0; t < p.Tiles; t++ {
				p.ColPtr[t][x] = int32(len(p.Row[t]))
			}
		}
		cur = j
	}
	if d, ok := cs.(*matrix.DVCCSC); ok {
		p.ColBytes = d.ColStreamBytes()
	}
	bounds := p.RowBounds
	lastT := 0
	cs.DecodeCols(0, int32(p.C), func(row, col int32, val float32) {
		if col > cur {
			// ColPtr[t][x] for x <= col counts only complete columns, so
			// close them before this column's first element lands.
			closeTo(col)
		}
		// Rows ascend within a column, so the owning tile only moves
		// forward from the previous element's; empty tiles (duplicate
		// bounds) are skipped because their half-open range is empty.
		if row < bounds[lastT] {
			lastT = 0
		}
		for row >= bounds[lastT+1] {
			lastT++
		}
		p.Row[lastT] = append(p.Row[lastT], row)
		p.Val[lastT] = append(p.Val[lastT], val)
	})
	closeTo(int32(p.C))
}

// Validate checks that the tile slices exactly tile the matrix.
func (p *OPPartition) Validate(m *matrix.CSC) error {
	p.Materialize()
	total := 0
	for t := 0; t < p.Tiles; t++ {
		total += len(p.Val[t])
		for j := 0; j < p.C; j++ {
			for q := p.ColPtr[t][j]; q < p.ColPtr[t][j+1]; q++ {
				r := p.Row[t][q]
				if r < p.RowBounds[t] || r >= p.RowBounds[t+1] {
					return fmt.Errorf("kernels: tile %d column %d holds row %d outside [%d,%d)",
						t, j, r, p.RowBounds[t], p.RowBounds[t+1])
				}
				if q > p.ColPtr[t][j] && p.Row[t][q] <= p.Row[t][q-1] {
					return fmt.Errorf("kernels: tile %d column %d rows not ascending", t, j)
				}
			}
		}
	}
	if total != m.NNZ() {
		return fmt.Errorf("kernels: tile slices hold %d elements, matrix %d", total, m.NNZ())
	}
	return nil
}

// NNZOfTile returns the elements assigned to one tile.
func (p *OPPartition) NNZOfTile(t int) int {
	p.Materialize()
	return len(p.Val[t])
}

// splitEven splits n items into `parts` contiguous chunks whose sizes
// differ by at most one; returns parts+1 boundaries. This is the LCP's
// dynamic distribution of frontier nonzeros to PEs.
func splitEven(n, parts int) []int32 {
	bounds := make([]int32, parts+1)
	for k := 0; k <= parts; k++ {
		bounds[k] = int32(n * k / parts)
	}
	return bounds
}
