package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/sim"
)

// mergeValue combines a kernel contribution with the destination's
// previous value according to the semiring:
//
//   - OnceOnly (BFS): settled vertices never change;
//   - MergePrev (monotone propagation): reduce with the previous value,
//     so untouched (Identity) contributions keep the old value and
//     touched ones can only improve it;
//   - Vector_Op (PR, CF): applied last, per Table I.
func mergeValue(op Operand, contrib, prev float32) float32 {
	r := op.Ring
	if r.OnceOnly && prev != r.Identity {
		return prev
	}
	v := contrib
	if r.MergePrev {
		v = r.Reduce(contrib, prev)
	}
	if r.VecOp != nil {
		v = r.VecOp(v, prev, op.Ctx)
	}
	return v
}

// mergeCost is the PE cycles charged per merged element (compare +
// reduce/vecop).
func mergeCost(op Operand) int {
	c := 1 + op.Ring.ReduceCost
	if op.Ring.VecOp != nil {
		c += 2
	}
	return c
}

// RunMergeDense is the post-IP pass: it streams the kernel output and
// the previous values, merges them, writes back changed values, and
// compacts the changed indices into the next sparse frontier (the
// dense→sparse conversion of §III-D2, fused with the merge the way a
// real implementation would).
//
// vals is updated in place and returned along with the extracted
// frontier (nil when the semiring keeps a dense frontier).
func RunMergeDense(cfg sim.Config, contrib, vals matrix.Dense, op Operand) (matrix.Dense, *matrix.SparseVec, sim.Result) {
	n := len(vals)
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	contribBase := arena.Alloc(n)
	valsBase := arena.Alloc(n)
	frontIdxBase := arena.Alloc(n + 1)
	frontValBase := arena.Alloc(n + 1)

	totalPEs := cfg.Geometry.TotalPEs()
	bounds := splitEven(n, totalPEs)
	perPE := make([][]int32, totalPEs)
	cost := mergeCost(op)
	extract := !op.Ring.DenseFrontier

	merged := make(matrix.Dense, n)
	prog := sim.Program{PE: func(p *sim.Proc) {
		g := p.GlobalPE()
		lo, hi := bounds[g], bounds[g+1]
		for i := lo; i < hi; i++ {
			p.LoadStream(contribBase + uint64(i)*4)
			p.LoadStream(valsBase + uint64(i)*4)
			p.Compute(cost)
			nv := mergeValue(op, contrib[i], vals[i])
			merged[i] = nv
			if nv != vals[i] {
				p.Store(valsBase + uint64(i)*4)
			}
			if extract && op.Ring.Improving(nv, vals[i]) {
				p.Store(frontIdxBase + uint64(i)*4)
				p.Store(frontValBase + uint64(i)*4)
				perPE[g] = append(perPE[g], int32(i))
			}
		}
	}}
	res := m.Run(prog)

	copy(vals, merged)
	var frontier *matrix.SparseVec
	if extract {
		frontier = &matrix.SparseVec{N: n}
		for _, list := range perPE { // PE ranges are ascending and disjoint
			for _, i := range list {
				frontier.Idx = append(frontier.Idx, i)
				frontier.Val = append(frontier.Val, vals[i])
			}
		}
	}
	return vals, frontier, res
}

// RunScatterMerge is the post-OP pass: the sparse kernel output is
// scattered into the persistent value array (random read-modify-write
// per touched destination) and changed destinations are compacted into
// the next frontier.
func RunScatterMerge(cfg sim.Config, contrib *matrix.SparseVec, vals matrix.Dense, op Operand) (matrix.Dense, *matrix.SparseVec, sim.Result) {
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	idxBase := arena.Alloc(contrib.NNZ() + 1)
	cvalBase := arena.Alloc(contrib.NNZ() + 1)
	valsBase := arena.Alloc(len(vals))
	frontIdxBase := arena.Alloc(contrib.NNZ() + 1)
	frontValBase := arena.Alloc(contrib.NNZ() + 1)

	totalPEs := cfg.Geometry.TotalPEs()
	bounds := splitEven(contrib.NNZ(), totalPEs)
	perPE := make([][]int32, totalPEs)
	cost := mergeCost(op)
	extract := !op.Ring.DenseFrontier

	newVals := make([]float32, contrib.NNZ())
	prog := sim.Program{PE: func(p *sim.Proc) {
		g := p.GlobalPE()
		lo, hi := bounds[g], bounds[g+1]
		for k := lo; k < hi; k++ {
			p.LoadStream(idxBase + uint64(k)*4)
			p.LoadStream(cvalBase + uint64(k)*4)
			i := contrib.Idx[k]
			p.Load(valsBase + uint64(i)*4) // random gather of the old value
			p.Compute(cost)
			nv := mergeValue(op, contrib.Val[k], vals[i])
			newVals[k] = nv
			if nv != vals[i] {
				p.Store(valsBase + uint64(i)*4)
			}
			if extract && op.Ring.Improving(nv, vals[i]) {
				p.Store(frontIdxBase + uint64(k)*4)
				p.Store(frontValBase + uint64(k)*4)
				perPE[g] = append(perPE[g], k)
			}
		}
	}}
	res := m.Run(prog)

	for k, i := range contrib.Idx {
		vals[i] = newVals[k]
	}
	var frontier *matrix.SparseVec
	if extract {
		frontier = &matrix.SparseVec{N: len(vals)}
		for _, list := range perPE { // contrib.Idx is sorted, chunks are disjoint
			for _, k := range list {
				frontier.Idx = append(frontier.Idx, contrib.Idx[k])
				frontier.Val = append(frontier.Val, vals[contrib.Idx[k]])
			}
		}
	}
	return vals, frontier, res
}

// RunFrontierDense maintains the persistent dense frontier buffer used
// by the IP kernel: positions active last time (`clear`) are reset to
// the identity, and the new frontier (`set`) is scattered in — the
// paper's "lightweight vector conversion" (§III-D2), which touches only
// O(|old| + |new|) elements instead of rebuilding the whole vector.
//
// buf is mutated in place and returned.
func RunFrontierDense(cfg sim.Config, buf matrix.Dense, clear, set *matrix.SparseVec, op Operand) (matrix.Dense, sim.Result) {
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	bufBase := arena.Alloc(len(buf))
	nClear, nSet := 0, 0
	if clear != nil {
		nClear = clear.NNZ()
	}
	if set != nil {
		nSet = set.NNZ()
	}
	clrIdxBase := arena.Alloc(nClear + 1)
	setIdxBase := arena.Alloc(nSet + 1)
	setValBase := arena.Alloc(nSet + 1)

	totalPEs := cfg.Geometry.TotalPEs()
	cb := splitEven(nClear, totalPEs)
	sb := splitEven(nSet, totalPEs)

	prog := sim.Program{PE: func(p *sim.Proc) {
		g := p.GlobalPE()
		for k := cb[g]; k < cb[g+1]; k++ {
			p.LoadStream(clrIdxBase + uint64(k)*4)
			p.Store(bufBase + uint64(clear.Idx[k])*4)
			buf[clear.Idx[k]] = op.Ring.Identity
		}
		for k := sb[g]; k < sb[g+1]; k++ {
			p.LoadStream(setIdxBase + uint64(k)*4)
			p.LoadStream(setValBase + uint64(k)*4)
			p.Store(bufBase + uint64(set.Idx[k])*4)
			buf[set.Idx[k]] = set.Val[k]
		}
	}}
	res := m.Run(prog)
	return buf, res
}
