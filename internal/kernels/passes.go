package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/sim"
)

// mergeValue combines a kernel contribution with the destination's
// previous value according to the semiring:
//
//   - OnceOnly (BFS): settled vertices never change;
//   - MergePrev (monotone propagation): reduce with the previous value,
//     so untouched (Identity) contributions keep the old value and
//     touched ones can only improve it;
//   - Vector_Op (PR, PPR, CF): applied last, per Table I, with the
//     destination id in Ctx.Dst (PPR's teleport term restarts at the
//     seed vertex only).
func mergeValue(op Operand, dst int32, contrib, prev float32) float32 {
	r := op.Ring
	if r.OnceOnly && prev != r.Identity {
		return prev
	}
	v := contrib
	if r.MergePrev {
		v = r.Reduce(contrib, prev)
	}
	if r.VecOp != nil {
		c := op.Ctx
		c.Dst = dst
		v = r.VecOp(v, prev, c)
	}
	return v
}

// mergeCost is the PE cycles charged per merged element (compare +
// reduce/vecop).
func mergeCost(op Operand) int {
	c := 1 + op.Ring.ReduceCost
	if op.Ring.VecOp != nil {
		c += 2
	}
	return c
}

// mergeAddrs is the simulated address map of the dense merge pass.
type mergeAddrs struct {
	contrib, vals, frontIdx, frontVal uint64
}

// mergeDenseRange merges contrib[lo:hi] into vals, staging new values
// in merged (applied by the caller after every range finishes) and
// returning the indices whose merge improved the old value — the range
// slice of the next sparse frontier. Shared by both backends.
func mergeDenseRange[P Probe](p P, lo, hi int32, contrib, vals, merged matrix.Dense, op Operand, cost int, extract bool, a mergeAddrs) []int32 {
	var changed []int32
	for i := lo; i < hi; i++ {
		p.LoadStream(a.contrib + uint64(i)*4)
		p.LoadStream(a.vals + uint64(i)*4)
		p.Compute(cost)
		nv := mergeValue(op, i, contrib[i], vals[i])
		merged[i] = nv
		if nv != vals[i] {
			p.Store(a.vals + uint64(i)*4)
		}
		if extract && op.Ring.Improving(nv, vals[i]) {
			p.Store(a.frontIdx + uint64(i)*4)
			p.Store(a.frontVal + uint64(i)*4)
			changed = append(changed, i)
		}
	}
	return changed
}

// scatterAddrs is the simulated address map of the sparse scatter-merge
// pass.
type scatterAddrs struct {
	idx, cval, vals, frontIdx, frontVal uint64
}

// scatterMergeRange merges the sparse contributions contrib[lo:hi] into
// vals, staging new values in newVals (applied by the caller) and
// returning the contribution positions whose merge improved the old
// value. contrib.Idx is sorted and unique, so ranges touch disjoint
// destinations. Shared by both backends.
func scatterMergeRange[P Probe](p P, lo, hi int32, contrib *matrix.SparseVec, vals matrix.Dense, newVals []float32, op Operand, cost int, extract bool, a scatterAddrs) []int32 {
	var changed []int32
	for k := lo; k < hi; k++ {
		p.LoadStream(a.idx + uint64(k)*4)
		p.LoadStream(a.cval + uint64(k)*4)
		i := contrib.Idx[k]
		p.Load(a.vals + uint64(i)*4) // random gather of the old value
		p.Compute(cost)
		nv := mergeValue(op, i, contrib.Val[k], vals[i])
		newVals[k] = nv
		if nv != vals[i] {
			p.Store(a.vals + uint64(i)*4)
		}
		if extract && op.Ring.Improving(nv, vals[i]) {
			p.Store(a.frontIdx + uint64(k)*4)
			p.Store(a.frontVal + uint64(k)*4)
			changed = append(changed, k)
		}
	}
	return changed
}

// frontierAddrs is the simulated address map of the dense-frontier
// conversion pass.
type frontierAddrs struct {
	buf, clrIdx, setIdx, setVal uint64
}

// frontierClearRange resets buf at clear.Idx[lo:hi] to the identity.
func frontierClearRange[P Probe](p P, lo, hi int32, buf matrix.Dense, clear *matrix.SparseVec, op Operand, a frontierAddrs) {
	for k := lo; k < hi; k++ {
		p.LoadStream(a.clrIdx + uint64(k)*4)
		p.Store(a.buf + uint64(clear.Idx[k])*4)
		buf[clear.Idx[k]] = op.Ring.Identity
	}
}

// frontierSetRange scatters set[lo:hi] into buf.
func frontierSetRange[P Probe](p P, lo, hi int32, buf matrix.Dense, set *matrix.SparseVec, a frontierAddrs) {
	for k := lo; k < hi; k++ {
		p.LoadStream(a.setIdx + uint64(k)*4)
		p.LoadStream(a.setVal + uint64(k)*4)
		p.Store(a.buf + uint64(set.Idx[k])*4)
		buf[set.Idx[k]] = set.Val[k]
	}
}

// RunMergeDense is the post-IP pass: it streams the kernel output and
// the previous values, merges them, writes back changed values, and
// compacts the changed indices into the next sparse frontier (the
// dense→sparse conversion of §III-D2, fused with the merge the way a
// real implementation would).
//
// vals is updated in place and returned along with the extracted
// frontier (nil when the semiring keeps a dense frontier).
func RunMergeDense(cfg sim.Config, contrib, vals matrix.Dense, op Operand) (matrix.Dense, *matrix.SparseVec, sim.Result) {
	n := len(vals)
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	addrs := mergeAddrs{
		contrib:  arena.Alloc(n),
		vals:     arena.Alloc(n),
		frontIdx: arena.Alloc(n + 1),
		frontVal: arena.Alloc(n + 1),
	}

	totalPEs := cfg.Geometry.TotalPEs()
	bounds := splitEven(n, totalPEs)
	perPE := make([][]int32, totalPEs)
	cost := mergeCost(op)
	extract := !op.Ring.DenseFrontier

	merged := make(matrix.Dense, n)
	prog := sim.Program{PE: func(p *sim.Proc) {
		g := p.GlobalPE()
		perPE[g] = mergeDenseRange(p, bounds[g], bounds[g+1], contrib, vals, merged, op, cost, extract, addrs)
	}}
	res := m.Run(prog)

	copy(vals, merged)
	var frontier *matrix.SparseVec
	if extract {
		frontier = assembleFrontier(n, perPE, vals)
	}
	return vals, frontier, res
}

// assembleFrontier concatenates per-range changed-index lists (ranges
// are ascending and disjoint) into the next sorted sparse frontier,
// reading values from the already-updated vals.
func assembleFrontier(n int, perRange [][]int32, vals matrix.Dense) *matrix.SparseVec {
	frontier := &matrix.SparseVec{N: n}
	for _, list := range perRange {
		for _, i := range list {
			frontier.Idx = append(frontier.Idx, i)
			frontier.Val = append(frontier.Val, vals[i])
		}
	}
	return frontier
}

// RunScatterMerge is the post-OP pass: the sparse kernel output is
// scattered into the persistent value array (random read-modify-write
// per touched destination) and changed destinations are compacted into
// the next frontier.
func RunScatterMerge(cfg sim.Config, contrib *matrix.SparseVec, vals matrix.Dense, op Operand) (matrix.Dense, *matrix.SparseVec, sim.Result) {
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	addrs := scatterAddrs{
		idx:      arena.Alloc(contrib.NNZ() + 1),
		cval:     arena.Alloc(contrib.NNZ() + 1),
		vals:     arena.Alloc(len(vals)),
		frontIdx: arena.Alloc(contrib.NNZ() + 1),
		frontVal: arena.Alloc(contrib.NNZ() + 1),
	}

	totalPEs := cfg.Geometry.TotalPEs()
	bounds := splitEven(contrib.NNZ(), totalPEs)
	perPE := make([][]int32, totalPEs)
	cost := mergeCost(op)
	extract := !op.Ring.DenseFrontier

	newVals := make([]float32, contrib.NNZ())
	prog := sim.Program{PE: func(p *sim.Proc) {
		g := p.GlobalPE()
		perPE[g] = scatterMergeRange(p, bounds[g], bounds[g+1], contrib, vals, newVals, op, cost, extract, addrs)
	}}
	res := m.Run(prog)

	for k, i := range contrib.Idx {
		vals[i] = newVals[k]
	}
	var frontier *matrix.SparseVec
	if extract {
		frontier = assembleScatterFrontier(contrib, perPE, vals)
	}
	return vals, frontier, res
}

// assembleScatterFrontier maps changed contribution positions back to
// destination indices (contrib.Idx is sorted, ranges are disjoint).
func assembleScatterFrontier(contrib *matrix.SparseVec, perRange [][]int32, vals matrix.Dense) *matrix.SparseVec {
	frontier := &matrix.SparseVec{N: len(vals)}
	for _, list := range perRange {
		for _, k := range list {
			frontier.Idx = append(frontier.Idx, contrib.Idx[k])
			frontier.Val = append(frontier.Val, vals[contrib.Idx[k]])
		}
	}
	return frontier
}

// RunFrontierDense maintains the persistent dense frontier buffer used
// by the IP kernel: positions active last time (`clear`) are reset to
// the identity, and the new frontier (`set`) is scattered in — the
// paper's "lightweight vector conversion" (§III-D2), which touches only
// O(|old| + |new|) elements instead of rebuilding the whole vector.
//
// buf is mutated in place and returned.
func RunFrontierDense(cfg sim.Config, buf matrix.Dense, clear, set *matrix.SparseVec, op Operand) (matrix.Dense, sim.Result) {
	m := sim.MustMachine(cfg)
	arena := sim.NewArena(cfg.Params)
	addrs := frontierAddrs{buf: arena.Alloc(len(buf))}
	nClear, nSet := 0, 0
	if clear != nil {
		nClear = clear.NNZ()
	}
	if set != nil {
		nSet = set.NNZ()
	}
	addrs.clrIdx = arena.Alloc(nClear + 1)
	addrs.setIdx = arena.Alloc(nSet + 1)
	addrs.setVal = arena.Alloc(nSet + 1)

	totalPEs := cfg.Geometry.TotalPEs()
	cb := splitEven(nClear, totalPEs)
	sb := splitEven(nSet, totalPEs)

	prog := sim.Program{PE: func(p *sim.Proc) {
		g := p.GlobalPE()
		frontierClearRange(p, cb[g], cb[g+1], buf, clear, op, addrs)
		frontierSetRange(p, sb[g], sb[g+1], buf, set, addrs)
	}}
	res := m.Run(prog)
	return buf, res
}
