package kernels

// heapEntry is one element of the OP kernel's sorted list (paper
// Fig. 3, bottom): the current head row of a matrix column stream plus
// the stream's cursor state — four words in memory (row, cursor,
// column end, frontier value; the source column id rides along for the
// semiring context but packs into the cursor word in a real layout).
type heapEntry struct {
	row  int32
	cur  int32
	end  int32
	fval float32
	col  int32
}

const heapEntryWords = 4

// opHeap is a binary min-heap over column head rows whose storage is
// charged to the probe: the first spmEntries entries live in the PE's
// private scratchpad (PS mode), the rest — and all of it in PC mode —
// in cacheable memory backing `base`. This implements the paper's
// observation that the heap's tree shape keeps most comparisons and
// swaps inside the SPM even when the list spills. Under NopProbe the
// charges vanish and only the functional merge order remains.
type opHeap[P Probe] struct {
	p          P
	entries    []heapEntry
	spmEntries int
	base       uint64 // cacheable backing store
}

// touch charges one entry read or write at index i.
func (h *opHeap[P]) touch(i int, write bool) {
	if i < h.spmEntries {
		for w := 0; w < heapEntryWords; w++ {
			if write {
				h.p.SPMStore(i*heapEntryWords + w)
			} else {
				h.p.SPMLoad(i*heapEntryWords + w)
			}
		}
		return
	}
	addr := h.base + uint64(i*heapEntryWords)*4
	for w := 0; w < heapEntryWords; w++ {
		if write {
			h.p.Store(addr + uint64(w)*4)
		} else {
			h.p.Load(addr + uint64(w)*4)
		}
	}
}

func (h *opHeap[P]) len() int { return len(h.entries) }

// push inserts an entry and sifts it up, charging the comparisons and
// the entry movements along the path.
func (h *opHeap[P]) push(e heapEntry) {
	h.entries = append(h.entries, e)
	i := len(h.entries) - 1
	h.touch(i, true)
	for i > 0 {
		parent := (i - 1) / 2
		h.touch(parent, false)
		h.p.Compute(1)
		if h.entries[parent].row <= h.entries[i].row {
			break
		}
		h.entries[parent], h.entries[i] = h.entries[i], h.entries[parent]
		h.touch(parent, true)
		h.touch(i, true)
		i = parent
	}
}

// popMin removes and returns the minimum entry, charging the root read,
// the tail move and the sift-down path.
func (h *opHeap[P]) popMin() heapEntry {
	h.touch(0, false)
	min := h.entries[0]
	last := len(h.entries) - 1
	h.touch(last, false)
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	if last > 0 {
		h.touch(0, true)
		h.siftDown(0)
	}
	return min
}

func (h *opHeap[P]) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n {
			h.touch(l, false)
			h.p.Compute(1)
			if h.entries[l].row < h.entries[small].row {
				small = l
			}
		}
		if r < n {
			h.touch(r, false)
			h.p.Compute(1)
			if h.entries[r].row < h.entries[small].row {
				small = r
			}
		}
		if small == i {
			return
		}
		h.entries[i], h.entries[small] = h.entries[small], h.entries[i]
		h.touch(i, true)
		h.touch(small, true)
		i = small
	}
}
