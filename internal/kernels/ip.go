package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/semiring"
	"cosparse/internal/sim"
)

// Operand bundles the inputs shared by both kernels: the semiring, its
// hyperparameter context, the source out-degrees (PR) and the previous
// iteration's destination values (SSSP, CF).
type Operand struct {
	Ring semiring.Semiring
	Ctx  semiring.Ctx
	Deg  []int32      // out-degree per source vertex; may be nil if !NeedsSrcDeg
	Prev matrix.Dense // previous values; may be nil if !NeedsDstVal
}

func (op Operand) ctxFor(dst, src int32) semiring.Ctx {
	c := op.Ctx
	c.Src = src
	if op.Ring.NeedsDstVal {
		c.DstVal = op.Prev[dst]
	}
	if op.Ring.NeedsSrcDeg {
		c.SrcDeg = op.Deg[src]
	}
	return c
}

// RunIP executes one inner-product SpMV on a fresh machine with the
// given configuration (SC or SCS): every PE streams its COO row
// partition vblock by vblock, reading the dense frontier either from
// the shared L1 cache (SC) or from the shared scratchpad after a
// cooperative fill (SCS), accumulating per-row in a register and
// read-modify-writing the output vector on row changes (paper Fig. 3,
// top).
//
// The returned vector holds Ring.Identity in untouched rows; the caller
// merges it with the previous values (see RunMergeDense).
func RunIP(cfg sim.Config, part *IPPartition, x matrix.Dense, op Operand) (matrix.Dense, sim.Result) {
	if len(x) != part.C {
		panic("kernels: RunIP frontier length mismatch")
	}
	m := sim.MustMachine(cfg)
	par := cfg.Params
	arena := sim.NewArena(par)
	matBase := arena.Alloc(3 * len(part.Val)) // (row, col, val) triples
	vecBase := arena.Alloc(part.C)
	outBase := arena.Alloc(part.R)
	var degBase, prevBase uint64
	if op.Ring.NeedsSrcDeg {
		degBase = arena.Alloc(part.C)
	}
	if op.Ring.NeedsDstVal {
		prevBase = arena.Alloc(part.R)
	}

	out := make(matrix.Dense, part.R)
	for i := range out {
		out[i] = op.Ring.Identity
	}

	// Frontier-masked algorithms skip inactive sources; dense-frontier
	// rings (PR, CF) treat every vertex as active, and their operators
	// may produce nonzero contributions even from zero-valued sources.
	skipInactive := !op.Ring.DenseFrontier

	prog := sim.Program{PE: func(p *sim.Proc) {
		pe := p.GlobalPE()
		if pe >= part.NumPEs {
			return
		}
		spm := cfg.HW == sim.SCS && part.VBlockWords > 0
		peInTile := p.PE()
		pesPerTile := cfg.Geometry.PEsPerTile

		curRow := int32(-1)
		var acc float32
		flush := func() {
			if curRow < 0 {
				return
			}
			// Read-modify-write of the output element.
			addr := outBase + uint64(curRow)*4
			p.Load(addr)
			p.Compute(op.Ring.ReduceCost)
			out[curRow] = op.Ring.Reduce(out[curRow], acc)
			p.Store(addr)
			curRow = -1
		}

		for _, seg := range part.Segs[pe] {
			vbStart := int(seg.VB) * part.VBlockWords
			if spm {
				// Cooperative SPM fill: the tile's PEs stream disjoint
				// chunks of this vblock's frontier segment into the
				// shared scratchpad.
				width := part.VBlockWords
				if vbStart+width > part.C {
					width = part.C - vbStart
				}
				share := (width + pesPerTile - 1) / pesPerTile
				lo := peInTile * share
				hi := lo + share
				if hi > width {
					hi = width
				}
				for i := lo; i < hi; i++ {
					p.LoadStream(vecBase + uint64(vbStart+i)*4)
					p.SPMStore(i)
				}
			}
			for k := seg.Lo; k < seg.Hi; k++ {
				row, col, val := part.Row[k], part.Col[k], part.Val[k]
				// Stream the COO triple (12 bytes, sequential). The
				// stream is prefetched ahead (bandwidth-bound) but its
				// lines still land in the L1 cache, competing with the
				// frontier vector for capacity — exactly the contention
				// SCS relieves by pinning the vector in the SPM
				// (paper §III-C2).
				for w := 0; w < 3; w++ {
					p.LoadStream(matBase + uint64(k)*12 + uint64(w)*4)
				}
				// Frontier element: scratchpad in SCS, cache in SC.
				if spm {
					p.SPMLoad(int(col) - vbStart)
				} else {
					p.Load(vecBase + uint64(col)*4)
				}
				// Inactive source (identity value): skip the compute and
				// the output access entirely (§IV-C1 — "skips computation
				// and accesses to the output vector if the vector element
				// is zero"). Compare cost is folded into the load-use slot.
				if skipInactive && x[col] == op.Ring.Identity {
					continue
				}
				if op.Ring.NeedsSrcDeg {
					p.Load(degBase + uint64(col)*4)
				}
				if row != curRow {
					flush()
					curRow = row
					if op.Ring.NeedsDstVal {
						p.Load(prevBase + uint64(row)*4)
					}
					p.Compute(op.Ring.MatOpCost)
					acc = op.Ring.MatOp(val, x[col], op.ctxFor(row, col))
					continue
				}
				p.Compute(op.Ring.MatOpCost + op.Ring.ReduceCost)
				acc = op.Ring.Reduce(acc, op.Ring.MatOp(val, x[col], op.ctxFor(row, col)))
			}
			flush()
		}
	}}

	res := m.Run(prog)
	return out, res
}
