package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/sim"
)

// ipAddrs is the simulated address map of the IP pass operands. The
// native backend passes the zero value — NopProbe never dereferences an
// address.
type ipAddrs struct {
	mat, vec, out, deg, prev uint64
}

// ipPEPass runs one PE's share of the inner-product pass: stream the
// COO row partition vblock by vblock, read the dense frontier either
// from cacheable memory (SC) or from the shared scratchpad after a
// cooperative fill (SCS), accumulate per-row in a register and
// read-modify-write the output vector on row changes (paper Fig. 3,
// top). All timing-relevant events go through the probe; the pass body
// is shared verbatim by the sim and native backends.
func ipPEPass[P Probe](p P, part *IPPartition, pe int, x, out matrix.Dense, op Operand, spm bool, peInTile, pesPerTile int, a ipAddrs) {
	// Frontier-masked algorithms skip inactive sources; dense-frontier
	// rings (PR, CF) treat every vertex as active, and their operators
	// may produce nonzero contributions even from zero-valued sources.
	skipInactive := !op.Ring.DenseFrontier

	curRow := int32(-1)
	var acc float32
	flush := func() {
		if curRow < 0 {
			return
		}
		// Read-modify-write of the output element.
		addr := a.out + uint64(curRow)*4
		p.Load(addr)
		p.Compute(op.Ring.ReduceCost)
		out[curRow] = op.Ring.Reduce(out[curRow], acc)
		p.Store(addr)
		curRow = -1
	}

	for _, seg := range part.Segs[pe] {
		vbStart := int(seg.VB) * part.VBlockWords
		if spm {
			// Cooperative SPM fill: the tile's PEs stream disjoint
			// chunks of this vblock's frontier segment into the
			// shared scratchpad.
			width := part.VBlockWords
			if vbStart+width > part.C {
				width = part.C - vbStart
			}
			share := (width + pesPerTile - 1) / pesPerTile
			lo := peInTile * share
			hi := lo + share
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				p.LoadStream(a.vec + uint64(vbStart+i)*4)
				p.SPMStore(i)
			}
		}
		for k := seg.Lo; k < seg.Hi; k++ {
			row, col, val := part.Row[k], part.Col[k], part.Val[k]
			// Stream the COO triple (12 bytes, sequential). The
			// stream is prefetched ahead (bandwidth-bound) but its
			// lines still land in the L1 cache, competing with the
			// frontier vector for capacity — exactly the contention
			// SCS relieves by pinning the vector in the SPM
			// (paper §III-C2).
			for w := 0; w < 3; w++ {
				p.LoadStream(a.mat + uint64(k)*12 + uint64(w)*4)
			}
			// Frontier element: scratchpad in SCS, cache in SC.
			if spm {
				p.SPMLoad(int(col) - vbStart)
			} else {
				p.Load(a.vec + uint64(col)*4)
			}
			// Inactive source (identity value): skip the compute and
			// the output access entirely (§IV-C1 — "skips computation
			// and accesses to the output vector if the vector element
			// is zero"). Compare cost is folded into the load-use slot.
			if skipInactive && x[col] == op.Ring.Identity {
				continue
			}
			if op.Ring.NeedsSrcDeg {
				p.Load(a.deg + uint64(col)*4)
			}
			if row != curRow {
				flush()
				curRow = row
				if op.Ring.NeedsDstVal {
					p.Load(a.prev + uint64(row)*4)
				}
				p.Compute(op.Ring.MatOpCost)
				acc = op.Ring.MatOp(val, x[col], op.ctxFor(row, col))
				continue
			}
			p.Compute(op.Ring.MatOpCost + op.Ring.ReduceCost)
			acc = op.Ring.Reduce(acc, op.Ring.MatOp(val, x[col], op.ctxFor(row, col)))
		}
		flush()
	}
}

// RunIP executes one inner-product SpMV on a fresh machine with the
// given configuration (SC or SCS), instantiating the shared pass body
// with a *sim.Proc probe per PE.
//
// The returned vector holds Ring.Identity in untouched rows; the caller
// merges it with the previous values (see RunMergeDense).
func RunIP(cfg sim.Config, part *IPPartition, x matrix.Dense, op Operand) (matrix.Dense, sim.Result) {
	if len(x) != part.C {
		panic("kernels: RunIP frontier length mismatch")
	}
	part.Materialize()
	m := sim.MustMachine(cfg)
	par := cfg.Params
	arena := sim.NewArena(par)
	addrs := ipAddrs{
		mat: arena.Alloc(3 * len(part.Val)), // (row, col, val) triples
		vec: arena.Alloc(part.C),
		out: arena.Alloc(part.R),
	}
	if op.Ring.NeedsSrcDeg {
		addrs.deg = arena.Alloc(part.C)
	}
	if op.Ring.NeedsDstVal {
		addrs.prev = arena.Alloc(part.R)
	}

	out := make(matrix.Dense, part.R)
	for i := range out {
		out[i] = op.Ring.Identity
	}

	prog := sim.Program{PE: func(p *sim.Proc) {
		pe := p.GlobalPE()
		if pe >= part.NumPEs {
			return
		}
		spm := cfg.HW == sim.SCS && part.VBlockWords > 0
		ipPEPass(p, part, pe, x, out, op, spm, p.PE(), cfg.Geometry.PEsPerTile, addrs)
	}}

	res := m.Run(prog)
	applyDecodePEs(cfg, ipDecodeUnits(part), 1, &res)
	return out, res
}
