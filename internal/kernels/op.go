package kernels

import (
	"cosparse/internal/matrix"
	"cosparse/internal/sim"
)

// opPair is one staged (row, reduced value) element of a sorted OP
// output stream.
type opPair struct {
	row int32
	val float32
}

// opPEAddrs is the simulated address map of one PE's OP column pass.
// The native backend passes the zero value.
type opPEAddrs struct {
	colPtr, row, val uint64 // this tile's CSC slice
	fIdx, fVal       uint64 // shared frontier arrays
	deg, prev        uint64
	heap, staging    uint64 // this PE's heap backing and staging buffer
}

// opPEPass runs one PE's share of the outer-product pass for tile t:
// merge-sort the head elements of the frontier columns [lo, hi) through
// a binary heap (the first spmEntries entries live in the PE's private
// SPM, the rest in cacheable memory), reducing duplicate rows and
// streaming (row, value) pairs into the staging buffer. Returns the
// sorted staged stream. The pass body is shared verbatim by the sim and
// native backends.
func opPEPass[P Probe](p P, part *OPPartition, t int, f *matrix.SparseVec, op Operand, lo, hi int32, spmEntries int, a opPEAddrs) []opPair {
	colPtr := part.ColPtr[t]
	rows := part.Row[t]
	vals := part.Val[t]

	h := &opHeap[P]{p: p, spmEntries: spmEntries, base: a.heap}

	// Build the sorted list of column heads: every heap entry
	// carries its column's cursor state.
	for k := lo; k < hi; k++ {
		p.LoadStream(a.fIdx + uint64(k)*4)
		j := f.Idx[k]
		p.Load(a.colPtr + uint64(j)*4)
		p.Load(a.colPtr + uint64(j+1)*4)
		start, end := colPtr[j], colPtr[j+1]
		if start == end {
			continue // empty column in this tile's row range
		}
		p.LoadStream(a.fVal + uint64(k)*4)
		fv := f.Val[k]
		if op.Ring.NeedsSrcDeg {
			p.Load(a.deg + uint64(j)*4)
		}
		// Load the head row and seed the sorted list.
		p.Load(a.row + uint64(start)*4)
		h.push(heapEntry{row: rows[start], cur: start, end: end, fval: fv, col: j})
	}

	var staged []opPair
	curRow := int32(-1)
	var acc float32
	nEmitted := 0
	emit := func() {
		if curRow < 0 {
			return
		}
		addr := a.staging + uint64(2*nEmitted)*4
		p.Store(addr)
		p.Store(addr + 4)
		staged = append(staged, opPair{curRow, acc})
		nEmitted++
		curRow = -1
	}

	for h.len() > 0 {
		e := h.popMin()
		// Matrix value for this head element.
		p.Load(a.val + uint64(e.cur)*4)
		mv := vals[e.cur]
		if op.Ring.NeedsDstVal {
			p.Load(a.prev + uint64(e.row)*4)
		}
		p.Compute(op.Ring.MatOpCost)
		cand := op.Ring.MatOp(mv, e.fval, op.ctxFor(e.row, e.col))
		if e.row == curRow {
			p.Compute(op.Ring.ReduceCost)
			acc = op.Ring.Reduce(acc, cand)
		} else {
			emit()
			curRow = e.row
			acc = cand
		}
		// Advance the column cursor and re-insert its new head.
		if e.cur+1 < e.end {
			p.Load(a.row + uint64(e.cur+1)*4)
			h.push(heapEntry{row: rows[e.cur+1], cur: e.cur + 1, end: e.end, fval: e.fval, col: e.col})
		}
	}
	emit()
	return staged
}

// opLCPPass runs one tile's LCP: a P-way tournament merge of the tile's
// sorted PE streams, reducing duplicate rows and writing the tile
// output to main memory. staged and stagingAddr hold the tile's
// pesPerTile streams and their simulated base addresses. Returns the
// tile's sorted output.
func opLCPPass[P Probe](p P, staged [][]opPair, op Operand, stagingAddr []uint64, outAddr uint64) []opPair {
	pesPerTile := len(staged)
	cursors := make([]int, pesPerTile)
	logP := 1
	for 1<<logP < pesPerTile {
		logP++
	}
	var out []opPair
	curRow := int32(-1)
	var acc float32
	nOut := 0
	flush := func() {
		if curRow < 0 {
			return
		}
		addr := outAddr + uint64(2*nOut)*4
		p.Store(addr)
		p.Store(addr + 4)
		out = append(out, opPair{curRow, acc})
		nOut++
		curRow = -1
	}
	for {
		best := -1
		var bestRow int32
		for pe := 0; pe < pesPerTile; pe++ {
			if cursors[pe] < len(staged[pe]) {
				r := staged[pe][cursors[pe]].row
				if best < 0 || r < bestRow {
					best, bestRow = pe, r
				}
			}
		}
		if best < 0 {
			break
		}
		p.Compute(logP) // tournament comparison
		addr := stagingAddr[best] + uint64(2*cursors[best])*4
		p.LoadStream(addr)
		p.LoadStream(addr + 4)
		e := staged[best][cursors[best]]
		cursors[best]++
		if e.row == curRow {
			p.Compute(op.Ring.ReduceCost)
			acc = op.Ring.Reduce(acc, e.val)
		} else {
			flush()
			curRow = e.row
			acc = e.val
		}
	}
	flush()
	return out
}

// RunOP executes one outer-product SpMV on a fresh machine with the
// given configuration (PC or PS): each tile owns a row partition stored
// as a tile-local CSC slice; the tile's LCP distributes the frontier's
// nonzeros evenly across its PEs (dynamic balancing, §III-B); each PE
// merge-sorts the head elements of its assigned matrix columns through
// a binary heap held in its private SPM (PS) or in cacheable memory
// (PC); merged (row, value) pairs stream into a per-PE staging buffer;
// and the LCP finally merges its PEs' sorted streams and writes the
// tile's output back to main memory (paper Fig. 3, bottom).
//
// Only columns with a corresponding frontier nonzero are touched — the
// work-skipping that makes OP win at low frontier density.
//
// The returned sparse vector holds the reduced contributions per
// destination row, sorted by row; the caller merges it with the
// previous values (see RunScatterMerge).
func RunOP(cfg sim.Config, part *OPPartition, f *matrix.SparseVec, op Operand) (*matrix.SparseVec, sim.Result) {
	if f.N != part.C {
		panic("kernels: RunOP frontier length mismatch")
	}
	part.Materialize()
	m := sim.MustMachine(cfg)
	par := cfg.Params
	arena := sim.NewArena(par)

	tiles := cfg.Geometry.Tiles
	pesPerTile := cfg.Geometry.PEsPerTile
	if tiles != part.Tiles {
		panic("kernels: RunOP partition built for a different tile count")
	}

	// Address map. One CSC slice per tile; shared frontier arrays; a
	// staging buffer and heap/state backing per PE; per-tile output.
	colPtrBase := make([]uint64, tiles)
	rowBase := make([]uint64, tiles)
	valBase := make([]uint64, tiles)
	for t := 0; t < tiles; t++ {
		colPtrBase[t] = arena.Alloc(part.C + 1)
		n := len(part.Row[t])
		if n == 0 {
			n = 1
		}
		rowBase[t] = arena.Alloc(n)
		valBase[t] = arena.Alloc(n)
	}
	fIdxBase := arena.Alloc(f.NNZ() + 1)
	fValBase := arena.Alloc(f.NNZ() + 1)
	var degBase, prevBase uint64
	if op.Ring.NeedsSrcDeg {
		degBase = arena.Alloc(part.C)
	}
	if op.Ring.NeedsDstVal {
		prevBase = arena.Alloc(part.R)
	}
	heapBase := make([]uint64, tiles*pesPerTile)
	stagingBase := make([]uint64, tiles*pesPerTile)
	outBase := make([]uint64, tiles)

	// Dynamic distribution: contiguous chunks of frontier nonzeros per
	// PE (the LCP's run-time assignment).
	peCols := splitEven(f.NNZ(), pesPerTile)
	for t := 0; t < tiles; t++ {
		for pe := 0; pe < pesPerTile; pe++ {
			g := t*pesPerTile + pe
			nCols := int(peCols[pe+1] - peCols[pe])
			if nCols == 0 {
				nCols = 1
			}
			heapBase[g] = arena.Alloc(nCols * heapEntryWords)
			// Worst case: the PE emits every element of its columns.
			cap := 0
			for k := peCols[pe]; k < peCols[pe+1]; k++ {
				j := f.Idx[k]
				cap += int(part.ColPtr[t][j+1] - part.ColPtr[t][j])
			}
			if cap == 0 {
				cap = 1
			}
			stagingBase[g] = arena.Alloc(2 * cap)
		}
		outBase[t] = arena.Alloc(2*(int(part.RowBounds[t+1]-part.RowBounds[t])) + 2)
	}

	// Functional staging output per PE and final per-tile outputs.
	staged := make([][]opPair, tiles*pesPerTile)
	tileOut := make([][]opPair, tiles)

	prog := sim.Program{
		PE: func(p *sim.Proc) {
			t := p.Tile()
			pe := p.PE()
			g := p.GlobalPE()
			lo, hi := peCols[pe], peCols[pe+1]
			if lo >= hi {
				return
			}
			spmEntries := cfg.SPMWordsPerPE() / heapEntryWords
			if cfg.HW != sim.PS {
				spmEntries = 0
			}
			staged[g] = opPEPass(p, part, t, f, op, lo, hi, spmEntries, opPEAddrs{
				colPtr:  colPtrBase[t],
				row:     rowBase[t],
				val:     valBase[t],
				fIdx:    fIdxBase,
				fVal:    fValBase,
				deg:     degBase,
				prev:    prevBase,
				heap:    heapBase[g],
				staging: stagingBase[g],
			})
		},
		LCP: func(p *sim.Proc) {
			t := p.Tile()
			tileOut[t] = opLCPPass(p,
				staged[t*pesPerTile:(t+1)*pesPerTile], op,
				stagingBase[t*pesPerTile:(t+1)*pesPerTile], outBase[t])
		},
	}

	res := m.Run(prog)
	applyDecodePEs(cfg, opDecodeUnits(part, f, peCols), 1, &res)

	// Tiles own ascending disjoint row ranges, so concatenation is the
	// sorted sparse result.
	out := &matrix.SparseVec{N: part.R}
	for t := 0; t < tiles; t++ {
		for _, e := range tileOut[t] {
			out.Idx = append(out.Idx, e.row)
			out.Val = append(out.Val, e.val)
		}
	}
	return out, res
}
