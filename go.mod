module cosparse

go 1.22
