// Benchmarks regenerating every table and figure of the paper (at
// ScaleTiny so `go test -bench=.` completes in minutes; run
// `cmd/experiments -scale small` or `-scale full` for the committed
// numbers), plus micro-benchmarks of the load-bearing components.
package cosparse

import (
	"testing"

	"cosparse/internal/bench"
	"cosparse/internal/gen"
	"cosparse/internal/kernels"
	"cosparse/internal/ligra"
	"cosparse/internal/matrix"
	"cosparse/internal/runtime"
	"cosparse/internal/semiring"
	"cosparse/internal/sim"
)

// ---- one benchmark per table/figure ----

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.TableI()
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.TableII()
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.TableIII(bench.ScaleTiny)
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig4(bench.ScaleTiny)
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig5(bench.ScaleTiny)
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig6(bench.ScaleTiny)
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig7(bench.ScaleTiny)
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig8(bench.ScaleTiny)
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig9(bench.ScaleTiny)
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = bench.Fig10(bench.ScaleTiny)
	}
}

// ---- kernel micro-benchmarks (simulated-cycle cost is the figure of
// merit; these measure host throughput of the simulator itself) ----

func benchMatrix() (*matrix.COO, *matrix.CSC) {
	m := gen.Uniform(16384, 62500, gen.Pattern, 42)
	return m, m.ToCSC()
}

func BenchmarkSimIPKernel(b *testing.B) {
	coo, _ := benchMatrix()
	g := sim.Geometry{Tiles: 4, PEsPerTile: 8}
	cfg := sim.NewConfig(g, sim.SC)
	part := kernels.NewIPPartition(coo, g.TotalPEs(), 0, kernels.BalanceNNZ)
	x := gen.Frontier(coo.C, 0.5, 7).ToDense(0)
	op := kernels.Operand{Ring: semiring.SpMV()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res := kernels.RunIP(cfg, part, x, op)
		if res.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
	b.ReportMetric(float64(coo.NNZ()), "nnz/op")
}

func BenchmarkSimOPKernel(b *testing.B) {
	_, csc := benchMatrix()
	g := sim.Geometry{Tiles: 4, PEsPerTile: 8}
	cfg := sim.NewConfig(g, sim.PS)
	part := kernels.NewOPPartitionCSC(csc, g.Tiles, kernels.BalanceNNZ)
	f := gen.Frontier(csc.C, 0.02, 9)
	op := kernels.Operand{Ring: semiring.SpMV()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res := kernels.RunOP(cfg, part, f, op)
		if res.Cycles == 0 {
			b.Fatal("no cycles")
		}
	}
}

func BenchmarkIPPartitionBuild(b *testing.B) {
	coo, _ := benchMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernels.NewIPPartition(coo, 32, 2048, kernels.BalanceNNZ)
	}
}

func BenchmarkOPPartitionBuild(b *testing.B) {
	_, csc := benchMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = kernels.NewOPPartitionCSC(csc, 8, kernels.BalanceNNZ)
	}
}

func BenchmarkCOOToCSC(b *testing.B) {
	coo, _ := benchMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coo.ToCSC()
	}
}

func BenchmarkSSSPFullRun(b *testing.B) {
	m := gen.PowerLaw(3000, 60000, 0.55, gen.UniformWeight, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw, err := runtime.New(m, runtime.Options{Geometry: sim.Geometry{Tiles: 2, PEsPerTile: 8}})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fw.SSSP(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLigraBFS(b *testing.B) {
	m := gen.PowerLaw(10000, 200000, 0.55, gen.Pattern, 13)
	g := ligra.NewGraph(m)
	x := ligra.DefaultXeon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ligra.BFS(g, 0, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicAPIPageRank(b *testing.B) {
	g, err := GeneratePowerLaw(5000, 50000, Unweighted, 17)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 2, PEsPerTile: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.PageRank(3, 0.15); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benchmarks for the design choices DESIGN.md calls out ----

func ablationRun(b *testing.B, mutate func(*sim.Params)) int64 {
	coo, _ := benchMatrix()
	g := sim.Geometry{Tiles: 4, PEsPerTile: 8}
	cfg := sim.NewConfig(g, sim.SC)
	mutate(&cfg.Params)
	part := kernels.NewIPPartition(coo, g.TotalPEs(), 0, kernels.BalanceNNZ)
	x := gen.Frontier(coo.C, 0.5, 7).ToDense(0)
	op := kernels.Operand{Ring: semiring.SpMV()}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res := kernels.RunIP(cfg, part, x, op)
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	return cycles
}

func BenchmarkAblationBaselineIP(b *testing.B) {
	ablationRun(b, func(*sim.Params) {})
}

func BenchmarkAblationNoPrefetch(b *testing.B) {
	ablationRun(b, func(p *sim.Params) { p.PrefetchDegree = 0 })
}

func BenchmarkAblationNoStoreBuffer(b *testing.B) {
	ablationRun(b, func(p *sim.Params) { p.StoreBufDepth = 1 })
}

func BenchmarkAblationWideSchedulerWindow(b *testing.B) {
	// Coarser interleaving: faster host simulation, looser contention
	// modelling. The cycle deltas vs the baseline quantify the error.
	ablationRun(b, func(p *sim.Params) { p.SchedulerWindow = 1024 })
}

func BenchmarkAblationSlowHBM(b *testing.B) {
	ablationRun(b, func(p *sim.Params) { p.HBMBaseLatency = 300 })
}

func BenchmarkBetweenness(b *testing.B) {
	g, err := GeneratePowerLaw(2000, 20000, Unweighted, 31)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 2, PEsPerTile: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Betweenness(0); err != nil {
			b.Fatal(err)
		}
	}
}
