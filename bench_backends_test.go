package cosparse

// Backend wall-clock comparison (the `make bench-backends` target):
// the same PageRank run on a scale-16 power-law graph through the
// trace-driven sim backend and the goroutine-parallel native backend.
// Gated behind BENCH_BACKENDS because the sim leg simulates every
// memory event of a million-edge graph; results land in
// BENCH_backends.json for trend tracking.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestBenchBackends(t *testing.T) {
	if os.Getenv("BENCH_BACKENDS") == "" {
		t.Skip("set BENCH_BACKENDS=1 to run the backend wall-clock comparison")
	}
	const (
		scale = 16
		n     = 1 << scale
		edges = 16 * n
		iters = 3
		alpha = 0.15
	)
	g, err := GeneratePowerLaw(n, edges, Weighted, 16)
	if err != nil {
		t.Fatal(err)
	}
	sys := System{Tiles: 16, PEsPerTile: 16}

	run := func(b Backend) time.Duration {
		eng, err := New(g, sys, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		if _, _, err := eng.PageRank(iters, alpha); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	simWall := run(SimBackend)
	natWall := run(NativeBackend)
	speedup := simWall.Seconds() / natWall.Seconds()

	out := struct {
		Graph      string  `json:"graph"`
		Vertices   int     `json:"vertices"`
		Edges      int     `json:"edges"`
		Algo       string  `json:"algo"`
		Iters      int     `json:"iters"`
		SimWallS   float64 `json:"sim_wall_s"`
		NativeWall float64 `json:"native_wall_s"`
		Speedup    float64 `json:"speedup"`
		GOMAXPROCS int     `json:"gomaxprocs"`
	}{
		Graph:      "powerlaw-scale16",
		Vertices:   n,
		Edges:      edges,
		Algo:       "pr",
		Iters:      iters,
		SimWallS:   simWall.Seconds(),
		NativeWall: natWall.Seconds(),
		Speedup:    speedup,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_backends.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sim %v, native %v, speedup %.1fx on %d procs", simWall, natWall, speedup, out.GOMAXPROCS)

	if speedup < 10 {
		t.Errorf("native backend only %.1fx faster than sim (want >= 10x)", speedup)
	}
}
