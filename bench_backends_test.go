package cosparse

// Backend wall-clock comparison (the `make bench-backends` target):
// the same PageRank run on a scale-16 power-law graph through the
// trace-driven sim backend and the goroutine-parallel native backend.
// The make target pins GOMAXPROCS=1 so the sim-vs-native-1p numbers
// are scheduling-stable across hosts; a second native leg at full host
// parallelism measures what the goroutine pool actually buys. Gated
// behind BENCH_BACKENDS because the sim leg simulates every memory
// event of a million-edge graph; results land in BENCH_backends.json
// for trend tracking.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestBenchBackends(t *testing.T) {
	if os.Getenv("BENCH_BACKENDS") == "" {
		t.Skip("set BENCH_BACKENDS=1 to run the backend wall-clock comparison")
	}
	const (
		scale = 16
		n     = 1 << scale
		edges = 16 * n
		iters = 3
		alpha = 0.15
	)
	g, err := GeneratePowerLaw(n, edges, Weighted, 16)
	if err != nil {
		t.Fatal(err)
	}
	sys := System{Tiles: 16, PEsPerTile: 16}

	run := func(b Backend) time.Duration {
		eng, err := New(g, sys, WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		if _, _, err := eng.PageRank(iters, alpha); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	// Pinned legs at the environment's GOMAXPROCS (1 under make).
	pinned := runtime.GOMAXPROCS(0)
	simWall := run(SimBackend)
	nat1p := run(NativeBackend)

	// Full-parallelism native leg on every host core.
	mp := runtime.NumCPU()
	runtime.GOMAXPROCS(mp)
	natMP := run(NativeBackend)
	runtime.GOMAXPROCS(pinned)

	speedup := simWall.Seconds() / natMP.Seconds()
	scaling := nat1p.Seconds() / natMP.Seconds()

	out := struct {
		Graph        string  `json:"graph"`
		Vertices     int     `json:"vertices"`
		Edges        int     `json:"edges"`
		Algo         string  `json:"algo"`
		Iters        int     `json:"iters"`
		GOMAXPROCS   int     `json:"gomaxprocs"`
		SimWallS     float64 `json:"sim_wall_s"`
		NativeWall1P float64 `json:"native_wall_1p_s"`
		GOMAXPROCSMP int     `json:"gomaxprocs_mp"`
		NativeWallMP float64 `json:"native_wall_mp_s"`
		Speedup      float64 `json:"speedup"`
		Scaling      float64 `json:"native_scaling"`
	}{
		Graph:        "powerlaw-scale16",
		Vertices:     n,
		Edges:        edges,
		Algo:         "pr",
		Iters:        iters,
		GOMAXPROCS:   pinned,
		SimWallS:     simWall.Seconds(),
		NativeWall1P: nat1p.Seconds(),
		GOMAXPROCSMP: mp,
		NativeWallMP: natMP.Seconds(),
		Speedup:      speedup,
		Scaling:      scaling,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_backends.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sim %v, native %v (%d procs) / %v (%d procs), speedup %.1fx, native scaling %.1fx",
		simWall, nat1p, pinned, natMP, mp, speedup, scaling)

	if speedup < 10 {
		t.Errorf("native backend only %.1fx faster than sim (want >= 10x)", speedup)
	}
}
