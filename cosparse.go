// Package cosparse is a software- and hardware-reconfigurable SpMV
// framework for graph analytics — a faithful reimplementation of
// "CoSPARSE: A Software and Hardware Reconfigurable SpMV Framework for
// Graph Analytics" (Feng et al., DAC 2021).
//
// A Graph is loaded (or generated) once; an Engine binds it to a
// simulated Transmuter-style reconfigurable many-core of a chosen
// geometry. Every algorithm iteration invokes one SpMV, and the engine
// picks, per iteration, the software configuration (inner-product for
// dense frontiers, outer-product for sparse ones) and the hardware
// configuration of the two-level on-chip memory (SC/SCS for IP, PC/PS
// for OP), charging reconfiguration and vector-conversion costs.
// Reports expose per-iteration decisions, cycle counts and energy.
//
//	g, _ := cosparse.GeneratePowerLaw(100_000, 1_000_000, cosparse.Weighted, 42)
//	eng, _ := cosparse.New(g, cosparse.System{Tiles: 16, PEsPerTile: 16})
//	dist, rep, _ := eng.SSSP(0)
//	fmt.Println(rep.Summary())
//
// All hardware is simulated deterministically (see internal/sim);
// identical inputs produce identical cycle counts on any host.
package cosparse

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cosparse/internal/exec"
	"cosparse/internal/gen"
	"cosparse/internal/kernels"
	"cosparse/internal/matrix"
	"cosparse/internal/runtime"
	"cosparse/internal/sim"
)

// Edge is one directed, weighted edge.
type Edge struct {
	Src, Dst int32
	Weight   float32
}

// ValueMode selects edge values for generated graphs.
type ValueMode int

const (
	// Unweighted gives every edge weight 1 (BFS, PR).
	Unweighted ValueMode = iota
	// Weighted draws weights uniformly from (0, 1] (SSSP, CF).
	Weighted
)

func (v ValueMode) gen() gen.ValueMode {
	if v == Weighted {
		return gen.UniformWeight
	}
	return gen.Pattern
}

// Format selects the resident storage layout of a Graph's matrix.
// Whatever the format, every algorithm produces bit-identical results
// on both backends: the engine decodes the store into the exact same
// partition layouts at build time, so only the resident footprint (and
// therefore how many graphs fit a node's memory budget) changes.
type Format int

const (
	// AutoFormat picks per graph: DVCSRFormat when the density/degree-
	// skew heuristic predicts a worthwhile saving, CSRFormat otherwise.
	AutoFormat Format = iota
	// CSRFormat is the uncompressed baseline (row-major triple store).
	CSRFormat
	// DVCSRFormat is delta-varint compressed sparse row: column gaps as
	// varints, values elided on unit-weight graphs.
	DVCSRFormat
	// BBCSRFormat is bitmap-block compressed sparse row: each row's
	// populated 64-column blocks as (gap varint, 64-bit bitmap) pairs —
	// the win on graphs with near-dense tiles, where DVCSR's one varint
	// per element costs more than one bit per element.
	BBCSRFormat
)

// String returns the format's flag/metric spelling.
func (f Format) String() string {
	switch f {
	case CSRFormat:
		return "csr"
	case DVCSRFormat:
		return "dvcsr"
	case BBCSRFormat:
		return "bbcsr"
	}
	return "auto"
}

// ParseFormat parses a -format flag or register-request value. The
// empty string selects auto.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return AutoFormat, nil
	case "csr":
		return CSRFormat, nil
	case "dvcsr":
		return DVCSRFormat, nil
	case "bbcsr":
		return BBCSRFormat, nil
	}
	return 0, fmt.Errorf("cosparse: unknown format %q (want \"auto\", \"csr\", \"dvcsr\" or \"bbcsr\")", s)
}

// Graph is an immutable graph bound to the CoSPARSE storage convention
// (the transposed adjacency matrix, ready for f_next = SpMV(G.T, f)).
// Its matrix lives behind the format seam: see InFormat.
type Graph struct {
	st matrix.Store
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { r, _ := g.st.Dims(); return r }

// NumEdges returns the number of stored edges.
func (g *Graph) NumEdges() int { return g.st.NNZ() }

// Density returns |E| / |V|².
func (g *Graph) Density() float64 {
	r, c := g.st.Dims()
	if r == 0 || c == 0 {
		return 0
	}
	return float64(g.st.NNZ()) / (float64(r) * float64(c))
}

// Format returns the resident storage format ("csr", "dvcsr" or
// "bbcsr").
func (g *Graph) Format() string { return g.st.Format().String() }

// ResidentBytes returns the measured footprint of the resident matrix
// arrays — the figure the service's admission controller charges.
func (g *Graph) ResidentBytes() int64 { return g.st.ResidentBytes() }

// InFormat returns the same graph re-encoded in the requested resident
// format (the graph itself when the format already matches).
// AutoFormat applies the exact-size selection over all candidate
// formats. The re-encode streams directly from the resident store —
// converting a compressed graph never materializes an intermediate
// uncompressed copy, so peak memory stays at source + destination.
func (g *Graph) InFormat(f Format) (*Graph, error) {
	if f == AutoFormat {
		switch matrix.AutoSelectStore(g.st) {
		case matrix.FormatDVCSR:
			f = DVCSRFormat
		case matrix.FormatBBCSR:
			f = BBCSRFormat
		default:
			f = CSRFormat
		}
	}
	switch f {
	case DVCSRFormat:
		if g.st.Format() == matrix.FormatDVCSR {
			return g, nil
		}
		d, err := matrix.EncodeDVCSRStore(g.st)
		if err != nil {
			return nil, fmt.Errorf("cosparse: %w", err)
		}
		return &Graph{st: d}, nil
	case BBCSRFormat:
		if g.st.Format() == matrix.FormatBBCSR {
			return g, nil
		}
		b, err := matrix.EncodeBBCSR(g.st)
		if err != nil {
			return nil, fmt.Errorf("cosparse: %w", err)
		}
		return &Graph{st: b}, nil
	}
	if g.st.Format() == matrix.FormatCSR {
		return g, nil
	}
	m, err := g.st.ToCOO()
	if err != nil {
		return nil, fmt.Errorf("cosparse: %w", err)
	}
	return &Graph{st: m}, nil
}

// OutDegree returns the out-degree of vertex v.
func (g *Graph) OutDegree(v int32) int32 {
	_, c := g.st.Dims()
	if v < 0 || int(v) >= c {
		return 0
	}
	return matrix.OutDegreesOf(g.st)[v]
}

// NewGraph builds a graph with n vertices from an edge list. Duplicate
// edges have their weights combined by addition.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	coords := make([]matrix.Coord, len(edges))
	for i, e := range edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		// Transposed adjacency: row = destination, col = source.
		coords[i] = matrix.Coord{Row: e.Dst, Col: e.Src, Val: w}
	}
	m, err := matrix.NewCOO(n, n, coords)
	if err != nil {
		return nil, fmt.Errorf("cosparse: %w", err)
	}
	return &Graph{st: m}, nil
}

// LoadEdgeList reads a SNAP-style "src dst [weight]" edge list
// ('#'/'%' comments ignored, ids compacted to [0, n)).
func LoadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	m, err := gen.ReadEdgeList(r, undirected)
	if err != nil {
		return nil, err
	}
	return &Graph{st: m}, nil
}

// WriteEdgeList writes the graph as a SNAP-style edge list, streaming
// row by row from the resident store — no uncompressed copy of a
// compressed graph is ever materialized.
func (g *Graph) WriteEdgeList(w io.Writer, header string) error {
	return gen.WriteEdgeListStore(w, g.st, header)
}

// GenerateUniform creates an n-vertex graph with ~edges uniformly
// random edges, deterministically from seed.
func GenerateUniform(n, edges int, mode ValueMode, seed uint64) (*Graph, error) {
	if n <= 0 || edges < 0 {
		return nil, fmt.Errorf("cosparse: invalid size %d/%d", n, edges)
	}
	return &Graph{st: gen.Uniform(n, edges, mode.gen(), seed)}, nil
}

// GeneratePowerLaw creates an n-vertex graph with ~edges edges whose
// degree distribution follows a power law (Chung–Lu), the shape of
// social networks.
func GeneratePowerLaw(n, edges int, mode ValueMode, seed uint64) (*Graph, error) {
	if n <= 0 || edges < 0 {
		return nil, fmt.Errorf("cosparse: invalid size %d/%d", n, edges)
	}
	return &Graph{st: gen.PowerLaw(n, edges, 0.55, mode.gen(), seed)}, nil
}

// GenerateSuite creates the named stand-in from the paper's Table III
// suite ("livejournal", "pokec", "youtube", "twitter", "vsp"), scaled
// down by the given factor (1 = published size).
func GenerateSuite(name string, scale int, mode ValueMode, seed uint64) (*Graph, error) {
	spec, err := gen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return &Graph{st: spec.Build(scale, mode.gen(), seed)}, nil
}

// System is the simulated machine geometry, written Tiles×PEsPerTile in
// the paper (e.g. 16×16).
type System struct {
	Tiles      int
	PEsPerTile int
}

// String formats the geometry as the paper writes it.
func (s System) String() string { return fmt.Sprintf("%dx%d", s.Tiles, s.PEsPerTile) }

// Software forces or frees the per-iteration software choice.
type Software int

const (
	// AutoSoftware lets the decision tree choose IP or OP.
	AutoSoftware Software = iota
	// InnerProduct forces IP.
	InnerProduct
	// OuterProduct forces OP.
	OuterProduct
)

// Hardware forces or frees the per-iteration memory configuration.
type Hardware int

const (
	// AutoHardware lets the decision tree choose.
	AutoHardware Hardware = iota
	// ForceSC pins L1 shared cache + L2 shared cache.
	ForceSC
	// ForceSCS pins L1 shared cache+SPM + L2 shared cache.
	ForceSCS
	// ForcePC pins L1 private cache + L2 private cache.
	ForcePC
	// ForcePS pins L1 private SPM + L2 private cache.
	ForcePS
)

// Backend selects the execution substrate for an Engine. Both backends
// run the identical kernel pass bodies, so algorithm results are
// bit-identical across them; only the cost accounting differs.
type Backend int

const (
	// SimBackend runs the kernels on the trace-driven cycle simulator —
	// the paper reproduction, with deterministic cycle counts and
	// energy (the default).
	SimBackend Backend = iota
	// NativeBackend runs the same kernels goroutine-parallel across
	// GOMAXPROCS host workers and reports wall-clock durations instead
	// of cycles.
	NativeBackend
)

// String returns the backend's flag/metric spelling.
func (b Backend) String() string {
	if b == NativeBackend {
		return "native"
	}
	return "sim"
}

// ParseBackend parses a -backend flag or job-request value. The empty
// string selects the sim default.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "sim":
		return SimBackend, nil
	case "native":
		return NativeBackend, nil
	}
	return 0, fmt.Errorf("cosparse: unknown backend %q (want \"sim\" or \"native\")", s)
}

// Option customizes an Engine.
type Option func(*runtime.Options)

// WithBackend selects the execution backend (default SimBackend).
func WithBackend(b Backend) Option {
	return func(o *runtime.Options) {
		if b == NativeBackend {
			o.Backend = exec.Native()
		} else {
			o.Backend = exec.Sim()
		}
	}
}

// WithSoftware forces the software configuration.
func WithSoftware(s Software) Option {
	return func(o *runtime.Options) {
		switch s {
		case InnerProduct:
			o.SW = runtime.ForceIP
		case OuterProduct:
			o.SW = runtime.ForceOP
		default:
			o.SW = runtime.AutoSW
		}
	}
}

// WithHardware forces the hardware configuration.
func WithHardware(h Hardware) Option {
	return func(o *runtime.Options) {
		switch h {
		case ForceSC:
			o.HW = runtime.ForceSC
		case ForceSCS:
			o.HW = runtime.ForceSCS
		case ForcePC:
			o.HW = runtime.ForcePC
		case ForcePS:
			o.HW = runtime.ForcePS
		default:
			o.HW = runtime.AutoHW
		}
	}
}

// WithoutBalancing disables the nnz-balanced static partitioning
// (§III-B), falling back to equal row ranges — mainly useful for
// reproducing the paper's Fig. 7 ablation.
func WithoutBalancing() Option {
	return func(o *runtime.Options) { o.Balancing = kernels.BalanceRows }
}

// WithDecodePEs models per-PE decode units on the sim backend: when
// the resident format is compressed, matrix streams are charged from
// HBM at their compressed line counts plus decode-pipe cycles, instead
// of pretending the raw operand arrays were resident (§III-B's
// bandwidth argument carried into the compressed domain). A no-op on
// uncompressed graphs and on the native backend; with the option
// absent, sim timings are bit-identical to an engine without it.
func WithDecodePEs() Option {
	return func(o *runtime.Options) { o.DecodePEs = true }
}

// WithMaxIterations bounds traversal algorithms.
func WithMaxIterations(n int) Option {
	return func(o *runtime.Options) { o.MaxIters = n }
}

// WithTraceCap bounds the per-iteration trace kept on reports: runs
// longer than n iterations retain only the most recent n entries
// (Report.TraceDropped counts the rest; cycle and energy totals stay
// exact). 0 keeps the default bound, negative keeps every iteration.
func WithTraceCap(n int) Option {
	return func(o *runtime.Options) { o.TraceCap = n }
}

// WithIterationHook installs fn at every iteration boundary, right
// after the context check and before the SpMV is issued. A non-nil
// return stops the run like a cancelled context: the Context entry
// points return the partial report together with the (wrapped) error.
// The serving layer uses this to thread fault injection and health
// checks through the simulated engine's run path.
func WithIterationHook(fn func(iter int) error) Option {
	return func(o *runtime.Options) { o.IterHook = fn }
}

// Thresholds tunes the reconfiguration decision tree (§III-C). Zero
// fields keep the calibrated defaults.
type Thresholds struct {
	// CVDCoefficient sets the IP/OP crossover: CVD = coefficient /
	// PEsPerTile (default 0.16, i.e. 2% at 8 PEs/tile).
	CVDCoefficient float64
	// SCSMinDensity is the frontier density above which SCS becomes
	// eligible (default 0.02).
	SCSMinDensity float64
	// SCSReuseFloor is the minimum matrix elements served per
	// scratchpad-staged vector word, nnz/(|V|·Tiles) (default 1.5).
	SCSReuseFloor float64
	// PSListFactor scales the private L1 bank capacity against the OP
	// sorted-list footprint (default 0.5).
	PSListFactor float64
}

// WithThresholds overrides decision-tree thresholds.
func WithThresholds(t Thresholds) Option {
	return func(o *runtime.Options) {
		pol := runtime.DefaultPolicy()
		if t.CVDCoefficient > 0 {
			pol.CVDCoeff = t.CVDCoefficient
			// Widen the clamp so the override is effective at any
			// PEs-per-tile.
			if t.CVDCoefficient > pol.CVDMax {
				pol.CVDMax = t.CVDCoefficient
			}
			if c := t.CVDCoefficient / 1024; c < pol.CVDMin {
				pol.CVDMin = c
			}
		}
		if t.SCSMinDensity > 0 {
			pol.SCSMinDensity = t.SCSMinDensity
		}
		if t.SCSReuseFloor > 0 {
			pol.SCSReuseFloor = t.SCSReuseFloor
		}
		if t.PSListFactor > 0 {
			pol.PSListFactor = t.PSListFactor
		}
		o.Policy = pol
	}
}

// Engine binds a Graph to a simulated machine and drives the
// reconfigurable SpMV runtime.
type Engine struct {
	fw        *runtime.Framework
	sys       System
	simulated bool
}

// New builds an Engine for the graph on the given system geometry.
func New(g *Graph, sys System, opts ...Option) (*Engine, error) {
	o := runtime.Options{Geometry: sim.Geometry{Tiles: sys.Tiles, PEsPerTile: sys.PEsPerTile}}
	for _, fn := range opts {
		fn(&o)
	}
	fw, err := runtime.NewFromStore(g.st, o)
	if err != nil {
		return nil, err
	}
	simulated := o.Backend == nil || o.Backend.Simulated()
	return &Engine{fw: fw, sys: sys, simulated: simulated}, nil
}

// IterationStat describes one algorithm iteration (one SpMV).
type IterationStat struct {
	Iter         int
	FrontierSize int
	Density      float64
	Software     string // "IP" or "OP"
	Hardware     string // "SC", "SCS", "PC", "PS"
	Reconfigured bool
	Cycles       int64
	EnergyJ      float64

	// Phase breakdown of Cycles: the SpMV kernel itself, the merge of
	// its contributions into the value vector, and the sparse↔dense
	// frontier format conversion charged when the software
	// configuration flips (§III-D2).
	KernelCycles int64 `json:",omitempty"`
	MergeCycles  int64 `json:",omitempty"`
	ConvCycles   int64 `json:",omitempty"`
	// Memory-system signals for this iteration: cycles PEs spent
	// stalled on memory and HBM lines read.
	StallCycles int64 `json:",omitempty"`
	HBMLines    int64 `json:",omitempty"`
	// Compressed-domain signals (WithDecodePEs on a compressed graph):
	// decode-pipe cycles charged and HBM lines saved versus streaming
	// the raw operand arrays (negative when the compressed gather cost
	// more than the raw slices).
	DecodeCycles  int64 `json:",omitempty"`
	HBMSavedLines int64 `json:",omitempty"`

	// Wall-clock durations (nanoseconds in JSON), filled by the native
	// backend instead of the cycle fields above; Wall is the iteration
	// total, the phase fields mirror Kernel/Merge/ConvCycles.
	Wall       time.Duration `json:",omitempty"`
	KernelWall time.Duration `json:",omitempty"`
	MergeWall  time.Duration `json:",omitempty"`
	ConvWall   time.Duration `json:",omitempty"`
}

// MemoryStats is the run-level memory-system breakdown: cache hit
// rates, HBM traffic split by direction, queueing delay, and stall
// totals, rolled up from the simulator's per-PE counters.
type MemoryStats struct {
	L1HitRate            float64
	L2HitRate            float64
	HBMReadLines         int64
	HBMWriteLines        int64
	HBMReadQueuedCycles  int64
	HBMWriteQueuedCycles int64
	AvgReadQueueCycles   float64
	AvgWriteQueueCycles  float64
	Loads                int64
	Stores               int64
	StreamLoads          int64
	Prefetches           int64
	Writebacks           int64
	StallCycles          int64
	ReconfigCycles       int64

	// Compressed-domain rollup (zero unless WithDecodePEs ran against a
	// compressed graph on the sim backend).
	DecodeCycles       int64 `json:",omitempty"`
	HBMCompressedLines int64 `json:",omitempty"`
	HBMSavedLines      int64 `json:",omitempty"`
}

// Report summarizes an algorithm run on the simulated hardware.
//
// Iterations is bounded by the engine's trace cap (WithTraceCap): when
// a run exceeds it, only the most recent entries are kept,
// TotalIterations still counts every iteration executed, and
// TraceDropped how many fell out of the window. TotalCycles, EnergyJ
// and Memory are exact regardless of truncation.
type Report struct {
	Algorithm   string
	System      System
	Iterations  []IterationStat
	TotalCycles int64
	Seconds     float64
	EnergyJ     float64
	AvgPowerW   float64

	// Backend names the execution substrate ("sim" or "native"); empty
	// on reports serialized before backends existed (≡ "sim"). Under
	// the native backend TotalCycles/Seconds/EnergyJ are zero and
	// WallSeconds carries measured host wall-clock kernel time.
	Backend     string  `json:",omitempty"`
	WallSeconds float64 `json:",omitempty"`

	TotalIterations int          `json:",omitempty"`
	TraceDropped    int          `json:",omitempty"`
	Memory          *MemoryStats `json:",omitempty"`

	// Resumed is set when the run restarted from a checkpoint (see
	// ContextWithCheckpoint); ResumedIteration is the iteration it
	// picked up at. Totals and the trace cover the whole logical run.
	Resumed          bool `json:",omitempty"`
	ResumedIteration int  `json:",omitempty"`
}

// Summary returns a one-paragraph human-readable digest.
func (r *Report) Summary() string {
	var sb strings.Builder
	iters := len(r.Iterations)
	if r.TotalIterations > iters {
		iters = r.TotalIterations
	}
	if r.Backend == "native" {
		fmt.Fprintf(&sb, "%s on %s (native backend): %d iterations, %.3g s wall",
			r.Algorithm, r.System, iters, r.WallSeconds)
	} else {
		fmt.Fprintf(&sb, "%s on %s: %d iterations, %d cycles (%.3g s @ 1 GHz), %.3g J, %.3g W avg",
			r.Algorithm, r.System, iters, r.TotalCycles, r.Seconds, r.EnergyJ, r.AvgPowerW)
	}
	reconfigs := 0
	for _, it := range r.Iterations {
		if it.Reconfigured {
			reconfigs++
		}
	}
	fmt.Fprintf(&sb, ", %d reconfigurations", reconfigs)
	return sb.String()
}

// Trace renders the per-iteration decision table (a Fig. 9-style view).
// The cost column shows simulated cycles, or wall-clock time on the
// native backend.
func (r *Report) Trace() string {
	native := r.Backend == "native"
	var sb strings.Builder
	unit := "cycles"
	if native {
		unit = "wall"
	}
	fmt.Fprintf(&sb, "iter  frontier  density   config  reconfig  %s\n", unit)
	for _, it := range r.Iterations {
		mark := ""
		if it.Reconfigured {
			mark = "*"
		}
		cost := fmt.Sprintf("%d", it.Cycles)
		if native {
			cost = it.Wall.String()
		}
		fmt.Fprintf(&sb, "%4d  %8d  %7.3f%%  %-6s  %-8s  %s\n",
			it.Iter, it.FrontierSize, 100*it.Density, it.Software+"/"+it.Hardware, mark, cost)
	}
	return sb.String()
}

func (e *Engine) report(rep *runtime.Report) *Report {
	out := &Report{
		Algorithm:   rep.Algorithm,
		System:      e.sys,
		TotalCycles: rep.TotalCycles,
		Seconds:     rep.Seconds(),
		EnergyJ:     rep.EnergyJ,
		AvgPowerW:   rep.AvgPowerW(),

		Backend:     rep.Backend,
		WallSeconds: rep.TotalWall.Seconds(),

		TotalIterations: rep.TotalIters,
		TraceDropped:    rep.DroppedIters,

		Resumed:          rep.Resumed,
		ResumedIteration: rep.ResumedIter,
	}
	if e.simulated {
		// The native backend runs no memory model; only simulated runs
		// carry a meaningful breakdown.
		b := rep.Stats.MemoryBreakdown()
		out.Memory = &MemoryStats{
			L1HitRate:            b.L1HitRate,
			L2HitRate:            b.L2HitRate,
			HBMReadLines:         b.HBMReadLines,
			HBMWriteLines:        b.HBMWriteLines,
			HBMReadQueuedCycles:  b.HBMReadQueued,
			HBMWriteQueuedCycles: b.HBMWriteQueued,
			AvgReadQueueCycles:   b.AvgReadQueueCycles,
			AvgWriteQueueCycles:  b.AvgWriteQueueCycles,
			Loads:                b.Loads,
			Stores:               b.Stores,
			StreamLoads:          b.StreamLoads,
			Prefetches:           b.Prefetches,
			Writebacks:           b.Writebacks,
			StallCycles:          b.StallCycles,
			ReconfigCycles:       b.ReconfigCycles,
			DecodeCycles:         b.DecodeCycles,
			HBMCompressedLines:   b.HBMCompressedLines,
			HBMSavedLines:        b.HBMSavedLines,
		}
	}
	for _, it := range rep.Iters {
		sw := "OP"
		if it.Decision.UseIP {
			sw = "IP"
		}
		out.Iterations = append(out.Iterations, IterationStat{
			Iter:          it.Iter,
			FrontierSize:  it.FrontierNNZ,
			Density:       it.Density,
			Software:      sw,
			Hardware:      it.Decision.HW.String(),
			Reconfigured:  it.Reconfig,
			Cycles:        it.TotalCycles,
			EnergyJ:       it.EnergyJ,
			KernelCycles:  it.KernelCycles,
			MergeCycles:   it.MergeCycles,
			ConvCycles:    it.ConvCycles,
			StallCycles:   it.Stats.StallCycles,
			HBMLines:      it.Stats.HBMLines,
			DecodeCycles:  it.Stats.DecodeCycles,
			HBMSavedLines: it.Stats.HBMSavedLines,
			Wall:          it.TotalWall,
			KernelWall:    it.KernelWall,
			MergeWall:     it.MergeWall,
			ConvWall:      it.ConvWall,
		})
	}
	return out
}

// BFSResult holds BFS parents and levels (-1 = unreachable).
type BFSResult struct {
	Parent []int32
	Level  []int32
}

// BFS runs breadth-first search from src.
func (e *Engine) BFS(src int32) (*BFSResult, *Report, error) {
	res, rep, err := e.fw.BFS(src)
	if err != nil {
		return nil, nil, err
	}
	return &BFSResult{Parent: res.Parent, Level: res.Level}, e.report(rep), nil
}

// SSSP runs single-source shortest paths from src over the stored edge
// weights; unreachable vertices get +Inf.
func (e *Engine) SSSP(src int32) ([]float32, *Report, error) {
	dist, rep, err := e.fw.SSSP(src)
	if err != nil {
		return nil, nil, err
	}
	return dist, e.report(rep), nil
}

// PageRank runs the damped power iteration for iters iterations.
func (e *Engine) PageRank(iters int, alpha float32) ([]float32, *Report, error) {
	pr, rep, err := e.fw.PageRank(iters, alpha)
	if err != nil {
		return nil, nil, err
	}
	return pr, e.report(rep), nil
}

// CF runs collaborative-filtering gradient descent (one latent factor
// per vertex) with learning rate beta and regularization lambda.
func (e *Engine) CF(iters int, beta, lambda float32) ([]float32, *Report, error) {
	v, rep, err := e.fw.CF(iters, beta, lambda)
	if err != nil {
		return nil, nil, err
	}
	return v, e.report(rep), nil
}

// PersonalizedPageRank runs personalized PageRank (random walk with
// restart) from the given seed vertex for iters iterations with
// damping alpha: the returned vector is the seed's personalized rank
// distribution. Batches of PPR jobs — one seed per user over one
// shared graph — are the canonical multi-source fusion workload; see
// PersonalizedPageRankBatch.
func (e *Engine) PersonalizedPageRank(seed int32, iters int, alpha float32) ([]float32, *Report, error) {
	pr, rep, err := e.fw.PPR(seed, iters, alpha)
	if err != nil {
		return nil, nil, err
	}
	return pr, e.report(rep), nil
}

// SpMV computes one y = G.T·x for a sparse input vector given as
// (indices, values) pairs, through the full reconfigurable path.
func (e *Engine) SpMV(idx []int32, val []float32) ([]float32, *Report, error) {
	sv, err := matrix.NewSparseVec(e.fw.N(), idx, val)
	if err != nil {
		return nil, nil, err
	}
	y, rep, err := e.fw.SpMV(sv)
	if err != nil {
		return nil, nil, err
	}
	return y, e.report(rep), nil
}

// Decide exposes the decision tree: the configuration the engine would
// pick for a frontier with the given number of active vertices.
func (e *Engine) Decide(frontierSize int) (software, hardware string) {
	d := e.fw.Decide(frontierSize)
	sw := "OP"
	if d.UseIP {
		sw = "IP"
	}
	return sw, d.HW.String()
}

// Edges returns a copy of the graph's edge list (source, destination,
// weight), in destination-major order.
func (g *Graph) Edges() []Edge {
	r, _ := g.st.Dims()
	out := make([]Edge, 0, g.st.NNZ())
	g.st.DecodeRows(0, int32(r), func(row, col int32, val float32) {
		// Stored transposed: row = destination, col = source.
		out = append(out, Edge{Src: col, Dst: row, Weight: val})
	})
	return out
}

// DensityTrace renders the report's frontier-density wave as a compact
// ASCII strip — one column per iteration, height by density, the chosen
// configuration underneath (the visual shape of the paper's Fig. 9).
func (r *Report) DensityTrace() string {
	if len(r.Iterations) == 0 {
		return "(no iterations)\n"
	}
	const rows = 8
	var maxD float64
	for _, it := range r.Iterations {
		if it.Density > maxD {
			maxD = it.Density
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	var sb strings.Builder
	for row := rows; row >= 1; row-- {
		if row == rows {
			fmt.Fprintf(&sb, "%6.1f%% |", 100*maxD)
		} else {
			sb.WriteString("        |")
		}
		for _, it := range r.Iterations {
			h := int(it.Density/maxD*float64(rows) + 0.5)
			if h >= row {
				sb.WriteString("#")
			} else {
				sb.WriteString(" ")
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("        +")
	sb.WriteString(strings.Repeat("-", len(r.Iterations)))
	sb.WriteString("\n     sw  ")
	for _, it := range r.Iterations {
		sb.WriteString(string(it.Software[0])) // I or O
	}
	sb.WriteString("\n     hw  ")
	for _, it := range r.Iterations {
		c := "c"
		if strings.HasSuffix(it.Hardware, "S") && it.Hardware != "SC" {
			c = "s" // a scratchpad configuration (SCS or PS)
		}
		sb.WriteString(c)
	}
	sb.WriteString("\n         (sw: I=inner product, O=outer product; hw: s=scratchpad, c=cache)\n")
	return sb.String()
}

// Betweenness computes single-source betweenness centrality (Brandes'
// dependency accumulation on the BFS DAG) as level-synchronized SpMV
// sweeps — a worked demonstration that algorithms beyond the paper's
// four map onto the same reconfigurable machinery. BC[v] is zero for
// the source and for unreachable vertices.
func (e *Engine) Betweenness(src int32) ([]float32, *Report, error) {
	bc, rep, err := e.fw.BC(src)
	if err != nil {
		return nil, nil, err
	}
	return bc, e.report(rep), nil
}
