package cosparse

import (
	"context"

	"cosparse/internal/runtime"
)

// Batched entry points: k compatible jobs of the same algorithm run as
// one fused multi-vector (SpMM) pass over the shared graph. Slot i of
// every returned slice corresponds to input i; each lane's result is
// bit-identical to the corresponding solo call, each lane gets its own
// report, and a cancelled or failed lane (errs[i] non-nil, result nil)
// does not disturb the others. ctxs may be shorter than the lane count
// (or hold nils) — missing entries default to context.Background().

// BFSBatch runs one BFS lane per source as a fused run.
func (e *Engine) BFSBatch(ctxs []context.Context, srcs []int32) ([]*BFSResult, []*Report, []error) {
	res, reps, errs := e.fw.BFSBatch(ctxs, srcs)
	out := make([]*BFSResult, len(res))
	for i, r := range res {
		if r != nil {
			out[i] = &BFSResult{Parent: r.Parent, Level: r.Level}
		}
	}
	return out, e.batchReports(reps), errs
}

// SSSPBatch runs one SSSP lane per source as a fused run.
func (e *Engine) SSSPBatch(ctxs []context.Context, srcs []int32) ([][]float32, []*Report, []error) {
	dists, reps, errs := e.fw.SSSPBatch(ctxs, srcs)
	out := make([][]float32, len(dists))
	for i, d := range dists {
		out[i] = d
	}
	return out, e.batchReports(reps), errs
}

// PageRankBatch runs k PageRank lanes as a fused run (k concurrent
// requests served for one amortized matrix pass).
func (e *Engine) PageRankBatch(ctxs []context.Context, k, iters int, alpha float32) ([][]float32, []*Report, []error) {
	ranks, reps, errs := e.fw.PageRankBatch(ctxs, k, iters, alpha)
	out := make([][]float32, len(ranks))
	for i, r := range ranks {
		out[i] = r
	}
	return out, e.batchReports(reps), errs
}

// PersonalizedPageRankBatch runs one PPR lane per seed as a fused run
// — the canonical multi-source workload (one personalization vector
// per user over one shared graph).
func (e *Engine) PersonalizedPageRankBatch(ctxs []context.Context, seeds []int32, iters int, alpha float32) ([][]float32, []*Report, []error) {
	ranks, reps, errs := e.fw.PPRBatch(ctxs, seeds, iters, alpha)
	out := make([][]float32, len(ranks))
	for i, r := range ranks {
		out[i] = r
	}
	return out, e.batchReports(reps), errs
}

// CFBatch runs k collaborative-filtering lanes as a fused run.
func (e *Engine) CFBatch(ctxs []context.Context, k, iters int, beta, lambda float32) ([][]float32, []*Report, []error) {
	vs, reps, errs := e.fw.CFBatch(ctxs, k, iters, beta, lambda)
	out := make([][]float32, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out, e.batchReports(reps), errs
}

// batchReports converts per-lane runtime reports (nil entries stay
// nil — lanes that failed validation before running).
func (e *Engine) batchReports(reps []*runtime.Report) []*Report {
	out := make([]*Report, len(reps))
	for i, rep := range reps {
		out[i] = e.partialReport(rep)
	}
	return out
}
