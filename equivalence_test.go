package cosparse

// Cross-framework equivalence: the CoSPARSE engine (simulated
// reconfigurable hardware) and the Ligra re-implementation (host
// execution with a Xeon model) run the same algorithms on the same
// graphs; their *values* must agree. This is the strongest end-to-end
// correctness check in the repository: two independent implementations
// of frontier semantics, semirings and convergence, compared exactly.

import (
	"math"
	"testing"

	"cosparse/internal/gen"
	"cosparse/internal/ligra"
	"cosparse/internal/matrix"
	"cosparse/internal/runtime"
	"cosparse/internal/sim"
)

func equivSetup(t *testing.T, seed uint64, mode gen.ValueMode) (*matrix.COO, *runtime.Framework, *ligra.Graph) {
	t.Helper()
	m := gen.PowerLaw(800, 12000, 0.55, mode, seed)
	fw, err := runtime.New(m, runtime.Options{Geometry: sim.Geometry{Tiles: 2, PEsPerTile: 8}})
	if err != nil {
		t.Fatal(err)
	}
	return m, fw, ligra.NewGraph(m)
}

func TestBFSAgreesWithLigra(t *testing.T) {
	_, fw, lg := equivSetup(t, 101, gen.Pattern)
	res, _, err := fw.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := ligra.BFS(lg, 0, ligra.DefaultXeon())
	if err != nil {
		t.Fatal(err)
	}
	for v := range res.Parent {
		coReached := res.Parent[v] >= 0
		liReached := !math.IsInf(float64(lres.Values[v]), 1)
		if coReached != liReached {
			t.Fatalf("vertex %d: reachability disagrees (cosparse %v, ligra %v)", v, coReached, liReached)
		}
		if coReached && v != 0 && res.Parent[v] != int32(lres.Values[v]) {
			t.Fatalf("vertex %d: parent %d vs ligra %g (both should be the min-label parent)",
				v, res.Parent[v], lres.Values[v])
		}
	}
}

func TestSSSPAgreesWithLigra(t *testing.T) {
	_, fw, lg := equivSetup(t, 102, gen.UniformWeight)
	dist, _, err := fw.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := ligra.SSSP(lg, 0, ligra.DefaultXeon())
	if err != nil {
		t.Fatal(err)
	}
	for v := range dist {
		a, b := float64(dist[v]), float64(lres.Values[v])
		if math.IsInf(a, 1) != math.IsInf(b, 1) {
			t.Fatalf("vertex %d: reachability disagrees", v)
		}
		if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-3 {
			t.Fatalf("vertex %d: distance %g vs ligra %g", v, a, b)
		}
	}
}

func TestPageRankAgreesWithLigra(t *testing.T) {
	_, fw, lg := equivSetup(t, 103, gen.Pattern)
	pr, _, err := fw.PageRank(12, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := ligra.PageRank(lg, 12, 0.15, ligra.DefaultXeon())
	if err != nil {
		t.Fatal(err)
	}
	for v := range pr {
		a, b := float64(pr[v]), float64(lres.Values[v])
		if math.Abs(a-b) > 1e-3*math.Max(math.Abs(b), 0.01) {
			t.Fatalf("vertex %d: pagerank %g vs ligra %g", v, a, b)
		}
	}
}

func TestCFAgreesWithLigra(t *testing.T) {
	_, fw, lg := equivSetup(t, 104, gen.UniformWeight)
	v, _, err := fw.CF(8, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := ligra.CF(lg, 8, 0.05, 0.01, ligra.DefaultXeon())
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		a, b := float64(v[i]), float64(lres.Values[i])
		if math.Abs(a-b) > 1e-2*math.Max(math.Abs(b), 0.1) {
			t.Fatalf("vertex %d: factor %g vs ligra %g", i, a, b)
		}
	}
}

// The frontier evolution itself must agree: per-iteration frontier
// sizes of CoSPARSE's SSSP match a functional frontier-based
// Bellman-Ford replay.
func TestFrontierEvolutionMatchesReplay(t *testing.T) {
	m, fw, _ := equivSetup(t, 105, gen.UniformWeight)
	_, rep, err := fw.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}

	// Functional replay in float32, matching the kernels' arithmetic
	// exactly so rounding cannot perturb the frontier evolution.
	csc := m.ToCSC()
	n := m.R
	inf := float32(math.Inf(1))
	dist := make([]float32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	frontier := []int32{0}
	var sizes []int
	for len(frontier) > 0 {
		sizes = append(sizes, len(frontier))
		best := map[int32]float32{}
		for _, s := range frontier {
			for p := csc.ColPtr[s]; p < csc.ColPtr[s+1]; p++ {
				d := csc.Row[p]
				cand := dist[s] + csc.Val[p]
				if cur, ok := best[d]; !ok || cand < cur {
					best[d] = cand
				}
			}
		}
		var next []int32
		for d, cand := range best {
			if cand < dist[d] {
				dist[d] = cand
				next = append(next, d)
			}
		}
		frontier = next
	}

	if len(rep.Iters) != len(sizes) {
		t.Fatalf("iteration counts differ: %d vs replay %d", len(rep.Iters), len(sizes))
	}
	for i, it := range rep.Iters {
		if it.FrontierNNZ != sizes[i] {
			t.Fatalf("iteration %d: frontier %d vs replay %d", i, it.FrontierNNZ, sizes[i])
		}
	}
}
