package main

// Kill-and-restart chaos test: a real cosparsed process is SIGKILLed
// mid-PageRank and restarted on the same data directory. The resumed
// job must finish with a result bit-identical to an uninterrupted run
// of the same job — on both execution backends. This is the end-to-end
// proof of the durability layer: journal replay, checkpoint resume,
// and the runtime's bit-identity contract, all through the real binary
// and real process death (no cooperative shutdown).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// daemonBinary builds cosparsed once per test process, with -race when
// the test binary itself is race-instrumented.
func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cosparsed-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "cosparsed")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", buildBin, ".")
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Run(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out.String())
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// daemon is one running cosparsed child process.
type daemon struct {
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startDaemon launches cosparsed against dataDir and waits for
// /healthz. Iterations are slowed by injected latency so the killer
// has a wide window between checkpoints. Extra flags (replication
// roles, worker counts) are appended after the base set, so later
// flags win for repeated names.
func startDaemon(t *testing.T, bin, dataDir string, port int, extra ...string) *daemon {
	t.Helper()
	d := &daemon{
		base: fmt.Sprintf("http://127.0.0.1:%d", port),
		logs: &bytes.Buffer{},
	}
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "1",
		"-data-dir", dataDir,
		"-checkpoint-every", "2",
		"-store-no-sync",
		"-fault-spec", "runtime.iteration:lat=1,latency=5ms",
		"-fault-seed", "7",
	}
	d.cmd = exec.Command(bin, append(args, extra...)...)
	d.cmd.Stdout, d.cmd.Stderr = d.logs, d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start cosparsed: %v", err)
	}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cosparsed never became healthy; logs:\n%s", d.logs.String())
	return nil
}

// sigkill terminates the daemon abruptly — no drain, no journal
// cleanup, exactly like a crash or OOM kill.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	d.cmd.Wait()
}

func (d *daemon) postJSON(t *testing.T, path string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func (d *daemon) getJSON(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: decode %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

// jobView is the slice of the job-status JSON the test compares.
type jobView struct {
	ID             string  `json:"id"`
	State          string  `json:"state"`
	Resumed        bool    `json:"resumed"`
	CheckpointIter int     `json:"checkpoint_iter"`
	Error          string  `json:"error"`
	Result         *result `json:"result"`
}

type result struct {
	Summary      string  `json:"summary"`
	TopVertex    int32   `json:"top_vertex"`
	TopScore     float64 `json:"top_score"`
	Reached      int     `json:"reached"`
	MeanDistance float64 `json:"mean_distance"`
	Iterations   int     `json:"iterations"`
	TotalCycles  int64   `json:"total_cycles"`
	EnergyJ      float64 `json:"energy_j"`
}

func (d *daemon) registerGraph(t *testing.T) {
	t.Helper()
	var info struct {
		ID string `json:"id"`
	}
	if code := d.postJSON(t, "/v1/graphs", map[string]any{
		"kind": "powerlaw", "vertices": 800, "edges": 6000, "seed": 7,
	}, &info); code != http.StatusCreated {
		t.Fatalf("register graph: %d; logs:\n%s", code, d.logs.String())
	}
	if info.ID != "g1" {
		t.Fatalf("graph id = %q", info.ID)
	}
}

func (d *daemon) submitPR(t *testing.T, backend string) string {
	t.Helper()
	var st jobView
	if code := d.postJSON(t, "/v1/jobs", map[string]any{
		"graph_id": "g1", "algo": "pr", "iterations": 150,
		"backend": backend, "timeout_ms": 120000,
	}, &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	return st.ID
}

// waitDone polls until the job settles and returns its final view.
func (d *daemon) waitDone(t *testing.T, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st jobView
		if code := d.getJSON(t, "/v1/jobs/"+id, &st); code == http.StatusOK {
			switch st.State {
			case "done", "failed", "cancelled":
				return st
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never settled; logs:\n%s", id, d.logs.String())
	return jobView{}
}

// waitCheckpointed polls until the running job has persisted at least
// minIter checkpoints' worth of progress — the kill window.
func (d *daemon) waitCheckpointed(t *testing.T, id string, minIter int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st jobView
		if code := d.getJSON(t, "/v1/jobs/"+id, &st); code == http.StatusOK {
			if st.CheckpointIter >= minIter && st.State == "running" {
				return
			}
			if st.State == "done" || st.State == "failed" {
				t.Fatalf("job %s settled (%s) before the kill window", id, st.State)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never checkpointed; logs:\n%s", id, d.logs.String())
}

// TestChaosRestart: SIGKILL cosparsed mid-PageRank, restart it on the
// same data dir, and demand a resumed result bit-identical to an
// uninterrupted run — per backend.
func TestChaosRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons; skipped in -short")
	}
	bin := daemonBinary(t)

	for _, backend := range []string{"sim", "native"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			// Uninterrupted reference run.
			ref := startDaemon(t, bin, t.TempDir(), freePort(t))
			ref.registerGraph(t)
			refID := ref.submitPR(t, backend)
			refView := ref.waitDone(t, refID)
			if refView.State != "done" || refView.Result == nil {
				t.Fatalf("reference job: %+v; logs:\n%s", refView, ref.logs.String())
			}
			ref.sigkill(t) // done with it; teardown can be abrupt

			// Chaos run: kill mid-flight after a checkpoint landed.
			dataDir := t.TempDir()
			victim := startDaemon(t, bin, dataDir, freePort(t))
			victim.registerGraph(t)
			id := victim.submitPR(t, backend)
			victim.waitCheckpointed(t, id, 2)
			victim.sigkill(t)

			// Restart on the same directory: the job must come back by
			// itself, resume from its checkpoint, and finish identically.
			revived := startDaemon(t, bin, dataDir, freePort(t))
			got := revived.waitDone(t, id)
			if got.State != "done" || got.Result == nil {
				t.Fatalf("resumed job: %+v; logs:\n%s", got, revived.logs.String())
			}
			if !got.Resumed {
				t.Error("resumed job does not report resumed=true")
			}
			r, w := got.Result, refView.Result
			if r.Summary != w.Summary || r.TopVertex != w.TopVertex || r.TopScore != w.TopScore ||
				r.Iterations != w.Iterations || r.TotalCycles != w.TotalCycles || r.EnergyJ != w.EnergyJ {
				t.Errorf("resumed result diverges from uninterrupted run:\n  ref %+v\n  got %+v", w, r)
			}
		})
	}
}
