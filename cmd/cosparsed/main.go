// Command cosparsed is the CoSPARSE graph-analytics service: a
// long-running daemon that holds registered graphs, caches prepared
// engines, and runs bfs/sssp/pr/cf jobs against them through a bounded
// worker pool, all over an HTTP/JSON API.
//
// Usage:
//
//	cosparsed -addr :8080 -workers 4 -queue 32
//
// API sketch (see README "Running the service" for curl examples):
//
//	POST   /v1/graphs      register/generate a graph
//	GET    /v1/graphs      list graphs
//	GET    /v1/graphs/{id} one graph
//	DELETE /v1/graphs/{id} unregister (refused while jobs run)
//	POST   /v1/jobs              submit a job (202; 429 when saturated)
//	GET    /v1/jobs/{id}         job status / result
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/jobs/{id}/trace   per-iteration decision trace
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text metrics
//	GET    /debug/pprof/         profiling (only with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosparse"
	"cosparse/internal/fault"
	"cosparse/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "job worker pool size")
	queue := flag.Int("queue", 16, "bounded job queue depth (submissions beyond it get 429)")
	cache := flag.Int("engine-cache", 8, "LRU capacity of the prepared-engine cache")
	maxGraphs := flag.Int("max-graphs", 64, "maximum registered graphs")
	maxVertices := flag.Int("max-vertices", 1<<22, "per-graph vertex ceiling")
	maxEdges := flag.Int("max-edges", 1<<26, "per-graph edge ceiling")
	tiles := flag.Int("tiles", 16, "default simulated tiles for jobs that name no geometry")
	pes := flag.Int("pes", 16, "default simulated PEs per tile")
	backend := flag.String("backend", "sim", "default execution backend for jobs that name none: sim or native")
	format := flag.String("format", "auto", "default storage format for graphs registered without one: auto, csr, dvcsr, or bbcsr")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested job deadlines")
	memBudget := flag.Int64("mem-budget", 2<<30, "estimated-resident-bytes budget for registered graphs; loads beyond it get 413 (0 = unlimited)")
	maxBody := flag.Int64("max-body", 64<<20, "request body size limit in bytes (oversize bodies get 413)")
	retries := flag.Int("retries", 3, "max automatic re-runs of a transiently failing job (backoff between attempts)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long in-flight jobs get to finish on SIGTERM before being cancelled")
	faultSpec := flag.String("fault-spec", "", "arm deterministic fault injection, e.g. 'scheduler.job_run:err=0.1,transient=true' (testing only)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for -fault-spec decisions")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	pprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (unauthenticated; bind accordingly)")
	slowJob := flag.Duration("slow-job", 0, "log a warning with the decision trace for jobs slower than this (0 = off)")
	traceFile := flag.String("trace", "", "append every finished job's per-iteration trace as a JSON line to this file")
	traceCap := flag.Int("trace-cap", 0, "per-job iteration-trace ring size (0 = default 4096, negative = unbounded)")
	dataDir := flag.String("data-dir", "", "durability directory: journal job/graph transitions and checkpoint running jobs there, and recover from it on startup (empty = in-memory only)")
	ckptEvery := flag.Int("checkpoint-every", 0, "iterations between checkpoint snapshots of running jobs with -data-dir (0 = default 16, negative = journal only)")
	noSync := flag.Bool("store-no-sync", false, "skip fsync in the durability store (testing only; voids crash consistency)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "gather window for multi-source job fusion: compatible jobs arriving within it coalesce into one fused multi-vector run (0 = disable batching)")
	batchLanes := flag.Int("batch-lanes", 32, "maximum jobs one fused run carries")
	follow := flag.String("follow", "", "start as a hot standby of the leader at this base URL (requires -data-dir; mutating endpoints answer 503 until promoted)")
	advertise := flag.String("advertise", "", "base URL this node is reachable at, sent to the leader when following (default derived from -addr)")
	replMode := flag.String("repl-mode", "async", "leader submit-ack coupling: async (ack on local durability) or semisync (hold acks for the follower's journal ack)")
	semisyncTimeout := flag.Duration("semisync-timeout", 2*time.Second, "cap on the semisync ack wait before falling back to async (counted in metrics)")
	replBuffer := flag.Int64("repl-buffer", 8<<20, "leader in-memory replication ship-buffer bytes; overflow forces a full resync")
	replHeartbeat := flag.Duration("repl-heartbeat", time.Second, "leader-to-follower heartbeat cadence")
	promoteAfter := flag.Duration("promote-after", 0, "auto-promote a synced standby when no leader heartbeat arrives for this long (0 = manual promotion only via POST /v1/admin/promote)")
	shedTarget := flag.Duration("shed-target", 0, "queue-delay shedding target: submissions are shed with 429 while dequeue delays stay above it (0 = default 1s, negative = disable)")
	shedInterval := flag.Duration("shed-interval", 0, "how long queue delays must exceed -shed-target before shedding arms (0 = default 100ms)")
	tenantQueue := flag.Int("tenant-queue", 0, "absolute per-tenant queued-job cap (0 = dynamic fair share of -queue across active tenants)")
	retryBudget := flag.Float64("retry-budget", 0, "retry tokens earned per admitted job, capping automatic retries as a fraction of admitted work (0 = default 0.1, negative = unlimited)")
	brownoutAfter := flag.Duration("brownout-after", 0, "sustained overload span before the service degrades (wider batch window, stretched checkpoints, 'degraded' in /readyz); 0 = default 2s, negative = disable")
	breakerAfter := flag.Int("semisync-breaker", 3, "consecutive semisync ack timeouts that open the replication ack circuit breaker (pure-async until a cooldown probe succeeds)")
	breakerCooldown := flag.Duration("semisync-breaker-cooldown", 10*time.Second, "open-breaker probe interval")
	flag.Parse()

	if *workers <= 0 || *queue <= 0 || *cache <= 0 {
		fail(fmt.Errorf("-workers, -queue and -engine-cache must be positive, got %d/%d/%d", *workers, *queue, *cache))
	}
	if *tiles <= 0 || *pes <= 0 {
		fail(fmt.Errorf("-tiles and -pes must be positive, got %d/%d", *tiles, *pes))
	}
	if _, err := cosparse.ParseBackend(*backend); err != nil {
		fail(fmt.Errorf("-backend: %w", err))
	}
	if _, err := cosparse.ParseFormat(*format); err != nil {
		fail(fmt.Errorf("-format: %w", err))
	}
	if *timeout <= 0 || *maxTimeout < *timeout {
		fail(fmt.Errorf("need 0 < -timeout <= -max-timeout, got %s/%s", *timeout, *maxTimeout))
	}
	if *maxBody <= 0 || *retries < 0 || *drainTimeout <= 0 {
		fail(fmt.Errorf("need -max-body > 0, -retries >= 0, -drain-timeout > 0"))
	}
	if *follow != "" {
		if *dataDir == "" {
			fail(fmt.Errorf("-follow requires -data-dir (the replicated journal lives there)"))
		}
		if *advertise == "" {
			// ":8080" → "http://127.0.0.1:8080"; an explicit host:port is
			// used as-is. Cross-host deployments should pass -advertise.
			host := *addr
			if strings.HasPrefix(host, ":") {
				host = "127.0.0.1" + host
			}
			*advertise = "http://" + host
		}
	}
	if *semisyncTimeout <= 0 || *replBuffer <= 0 || *replHeartbeat <= 0 {
		fail(fmt.Errorf("need -semisync-timeout, -repl-buffer and -repl-heartbeat > 0"))
	}
	if *breakerAfter <= 0 || *breakerCooldown <= 0 {
		fail(fmt.Errorf("need -semisync-breaker and -semisync-breaker-cooldown > 0"))
	}
	if *tenantQueue < 0 || *tenantQueue > *queue {
		fail(fmt.Errorf("-tenant-queue must be in [0, -queue], got %d", *tenantQueue))
	}

	if *retries == 0 {
		*retries = -1 // RetryPolicy: 0 means default, negative disables
	}

	var inject *fault.Injector
	if *faultSpec != "" {
		var err error
		inject, err = fault.ParseSpec(*faultSeed, *faultSpec)
		if err != nil {
			fail(fmt.Errorf("-fault-spec: %w", err))
		}
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	var traceSink io.Writer
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(fmt.Errorf("-trace: %w", err))
		}
		defer f.Close()
		traceSink = f
	}

	svc, err := service.Open(service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		EngineCacheSize:    *cache,
		MaxGraphs:          *maxGraphs,
		MaxVertices:        *maxVertices,
		MaxEdges:           *maxEdges,
		DefaultSystem:      cosparse.System{Tiles: *tiles, PEsPerTile: *pes},
		DefaultBackend:     *backend,
		DefaultFormat:      *format,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MemoryBudgetBytes:  *memBudget,
		MaxBodyBytes:       *maxBody,
		Retry:              service.RetryPolicy{MaxRetries: *retries},
		Faults:             inject,
		Logger:             logger,
		EnablePprof:        *pprof,
		SlowJob:            *slowJob,
		TraceCap:           *traceCap,
		TraceSink:          traceSink,
		DataDir:            *dataDir,
		CheckpointEvery:    *ckptEvery,
		StoreNoSync:        *noSync,
		BatchWindow:        *batchWindow,
		BatchMaxLanes:      *batchLanes,
		FollowLeader:       *follow,
		AdvertiseURL:       *advertise,
		ReplMode:           *replMode,
		SemisyncTimeout:    *semisyncTimeout,
		ReplBufferBytes:    *replBuffer,
		ReplHeartbeatEvery: *replHeartbeat,
		PromoteAfter:       *promoteAfter,
		ShedTarget:         *shedTarget,
		ShedInterval:       *shedInterval,
		TenantQueueDepth:   *tenantQueue,
		RetryBudget:        *retryBudget,
		BrownoutAfter:      *brownoutAfter,

		SemisyncBreakerAfter:    *breakerAfter,
		SemisyncBreakerCooldown: *breakerCooldown,
	})
	if err != nil {
		fail(fmt.Errorf("open service: %w", err))
	}
	defer svc.Close()
	if *dataDir != "" {
		rec := svc.Recovered()
		logger.Info("durability enabled",
			slog.String("data_dir", *dataDir),
			slog.Int("journal_records", rec.Records),
			slog.Int("graphs_restored", rec.GraphsRestored),
			slog.Int("jobs_resumed", rec.JobsResumed),
			slog.Int("jobs_restarted", rec.JobsRestarted),
			slog.Int("jobs_unrecoverable", rec.JobsFailed),
		)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *maxTimeout + time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("cosparsed listening", slog.String("addr", *addr),
			slog.Int("workers", *workers), slog.Int("queue", *queue))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful drain: /readyz flips to 503 immediately, queued jobs
		// are failed, and in-flight jobs get -drain-timeout to finish
		// before being cancelled. Only then is the listener closed, so
		// clients can still poll job status during the drain.
		logger.Info("shutting down", slog.Duration("drain_timeout", *drainTimeout))
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
		_ = svc.Drain(drainCtx)
		cancelDrain()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Warn("shutdown", slog.String("err", err.Error()))
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "cosparsed: %v\n", err)
	os.Exit(1)
}
