package main

// Hot-standby failover chaos test: a leader cosparsed streams its
// journal and checkpoints to a follower process, is SIGKILLed with a
// mixed batch of jobs in flight — two mid-checkpoint PageRanks pinning
// the workers, traversals queued behind them, and a fused batch pair —
// and the follower is promoted. Every job must finish on the promoted
// node under its original id with a result bit-identical to an
// uninterrupted run, on both execution backends. This is the
// end-to-end proof of the replication layer: resync, frame streaming,
// checkpoint shipping, epoch fencing, and promote-time recovery,
// all through real binaries and real process death.

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// submitFailoverJobs issues the fixed mixed workload and returns the
// job ids in submission order. The two 150-iteration PageRanks go
// first so they occupy both workers (and checkpoint) while the
// traversals and the fused batch pair wait in the queue.
func submitFailoverJobs(t *testing.T, d *daemon) []string {
	t.Helper()
	var ids []string
	single := func(body map[string]any) {
		t.Helper()
		var st jobView
		if code := d.postJSON(t, "/v1/jobs", body, &st); code != http.StatusAccepted {
			t.Fatalf("submit %v: %d; logs:\n%s", body, code, d.logs.String())
		}
		ids = append(ids, st.ID)
	}
	single(map[string]any{"graph_id": "g1", "algo": "pr", "iterations": 150, "backend": "sim", "timeout_ms": 120000})
	single(map[string]any{"graph_id": "g1", "algo": "pr", "iterations": 150, "backend": "native", "timeout_ms": 120000})
	single(map[string]any{"graph_id": "g1", "algo": "bfs", "source": 0, "backend": "sim", "timeout_ms": 120000})
	single(map[string]any{"graph_id": "g1", "algo": "bfs", "source": 0, "backend": "native", "timeout_ms": 120000})
	single(map[string]any{"graph_id": "g1", "algo": "sssp", "source": 1, "backend": "sim", "timeout_ms": 120000})
	single(map[string]any{"graph_id": "g1", "algo": "sssp", "source": 1, "backend": "native", "timeout_ms": 120000})
	// A compatible pair through the batch endpoint: these fuse into one
	// multi-source run when the gather window catches them together.
	var batch struct {
		Jobs     []jobView `json:"jobs"`
		Rejected int       `json:"rejected"`
		Error    string    `json:"error"`
	}
	if code := d.postJSON(t, "/v1/jobs/batch", map[string]any{
		"graph_id": "g1", "algo": "bfs", "sources": []int32{2, 3},
		"backend": "native", "timeout_ms": 120000,
	}, &batch); code != http.StatusAccepted || len(batch.Jobs) != 2 {
		t.Fatalf("batch submit: %d %+v; logs:\n%s", code, batch, d.logs.String())
	}
	for _, j := range batch.Jobs {
		ids = append(ids, j.ID)
	}
	return ids
}

// TestChaosFailover: SIGKILL the leader with >= 8 mixed-algo jobs in
// flight, promote the follower, and demand every job complete there
// bit-identically to an uninterrupted run.
func TestChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons; skipped in -short")
	}
	bin := daemonBinary(t)

	// Uninterrupted reference run of the same workload.
	ref := startDaemon(t, bin, t.TempDir(), freePort(t), "-workers", "2")
	ref.registerGraph(t)
	refIDs := submitFailoverJobs(t, ref)
	want := map[string]jobView{}
	for _, id := range refIDs {
		v := ref.waitDone(t, id)
		if v.State != "done" || v.Result == nil {
			t.Fatalf("reference job %s: %+v; logs:\n%s", id, v, ref.logs.String())
		}
		want[id] = v
	}
	ref.sigkill(t) // done with it; teardown can be abrupt

	// Leader + follower pair. Semisync couples every 202 to the
	// follower's journal ack, so the kill below cannot race a submit.
	leaderPort, followerPort := freePort(t), freePort(t)
	leader := startDaemon(t, bin, t.TempDir(), leaderPort,
		"-workers", "2",
		"-repl-mode", "semisync",
		"-semisync-timeout", "10s",
		"-repl-heartbeat", "100ms",
	)
	follower := startDaemon(t, bin, t.TempDir(), followerPort,
		"-workers", "2",
		"-follow", leader.base,
		"-advertise", fmt.Sprintf("http://127.0.0.1:%d", followerPort),
	)

	// Wait for the initial resync to commit: /readyz flips to 200 with
	// replication "caught-up".
	deadline := time.Now().Add(30 * time.Second)
	for {
		var ready struct {
			Role        string `json:"role"`
			Replication string `json:"replication"`
		}
		if code := follower.getJSON(t, "/readyz", &ready); code == http.StatusOK {
			if ready.Role != "follower" || ready.Replication != "caught-up" {
				t.Fatalf("ready follower reports %+v", ready)
			}
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("follower never caught up; logs:\n%s", follower.logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	leader.registerGraph(t)
	ids := submitFailoverJobs(t, leader)
	if len(ids) != len(refIDs) {
		t.Fatalf("submitted %d jobs, reference ran %d", len(ids), len(refIDs))
	}
	for i, id := range ids {
		if id != refIDs[i] {
			t.Fatalf("job id drift: got %q, reference %q", id, refIDs[i])
		}
	}

	// Let both running PageRanks persist (and ship) checkpoints, then
	// kill the leader abruptly with everything else still queued.
	leader.waitCheckpointed(t, ids[0], 2)
	leader.waitCheckpointed(t, ids[1], 2)
	leader.sigkill(t)

	var view struct {
		Role  string `json:"role"`
		Epoch uint64 `json:"epoch"`
	}
	if code := follower.postJSON(t, "/v1/admin/promote", nil, &view); code != http.StatusOK {
		t.Fatalf("promote: %d %+v; logs:\n%s", code, view, follower.logs.String())
	}
	if view.Role != "leader" || view.Epoch == 0 {
		t.Fatalf("promoted view = %+v", view)
	}
	if code := follower.getJSON(t, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("promoted node not ready: %d", code)
	}

	// Every job — resumed, restarted, or refused? none may be refused —
	// must settle on the promoted node with the reference result.
	for i, id := range ids {
		got := follower.waitDone(t, id)
		if got.State != "done" || got.Result == nil {
			t.Fatalf("failed-over job %s: %+v; logs:\n%s", id, got, follower.logs.String())
		}
		r, w := got.Result, want[id].Result
		if r.Summary != w.Summary || r.TopVertex != w.TopVertex || r.TopScore != w.TopScore ||
			r.Reached != w.Reached || r.MeanDistance != w.MeanDistance ||
			r.Iterations != w.Iterations || r.TotalCycles != w.TotalCycles || r.EnergyJ != w.EnergyJ {
			t.Errorf("job %s (#%d) diverges from uninterrupted run:\n  ref %+v\n  got %+v", id, i+1, w, r)
		}
	}
}
