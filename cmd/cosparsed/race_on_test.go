//go:build race

package main

// raceEnabled mirrors the test binary's -race state so the chaos test
// builds the child daemon with the same instrumentation.
const raceEnabled = true
