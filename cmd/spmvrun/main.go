// Command spmvrun runs a single SpMV kernel under an explicit
// software/hardware configuration and prints the cycle count and the
// full event statistics — the exploration tool behind the paper's
// threshold analysis (§III-C).
//
// Usage:
//
//	spmvrun -n 131072 -nnz 4000000 -density 0.01 -tiles 4 -pes 16 -sw ip -hw sc
//	spmvrun -n 65536 -nnz 250000 -density 0.005 -sw op -hw ps -matrix powerlaw
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"cosparse/internal/exec"
	"cosparse/internal/gen"
	"cosparse/internal/kernels"
	"cosparse/internal/matrix"
	"cosparse/internal/semiring"
	"cosparse/internal/sim"
)

func main() {
	n := flag.Int("n", 65536, "matrix dimension")
	nnz := flag.Int("nnz", 250000, "matrix nonzeros")
	density := flag.Float64("density", 0.01, "frontier vector density")
	mkind := flag.String("matrix", "uniform", "matrix kind: uniform or powerlaw")
	tiles := flag.Int("tiles", 4, "tiles")
	pes := flag.Int("pes", 16, "PEs per tile")
	backend := flag.String("backend", "sim", "execution backend: sim (trace-driven timing) or native (goroutine-parallel host run)")
	format := flag.String("format", "auto", "matrix storage format: auto, csr, dvcsr (delta-varint), or bbcsr (bitmap-block)")
	decodePE := flag.Bool("decode-pe", false, "model per-PE decode units on the sim backend: charge decode cycles and HBM traffic at compressed line counts (compressed formats only)")
	sw := flag.String("sw", "ip", "software: ip or op")
	hw := flag.String("hw", "", "hardware: sc, scs, pc, ps (default: sc for ip, pc for op)")
	balance := flag.Bool("balance", true, "use nnz-balanced partitioning")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	if *n <= 0 || *nnz <= 0 {
		fail(fmt.Errorf("-n and -nnz must be positive, got %d/%d", *n, *nnz))
	}
	if *tiles <= 0 || *pes <= 0 {
		fail(fmt.Errorf("-tiles and -pes must be positive, got %d/%d", *tiles, *pes))
	}
	if *density < 0 || *density > 1 {
		fail(fmt.Errorf("-density must be in [0,1], got %g", *density))
	}
	if s := strings.ToLower(*sw); s != "ip" && s != "op" {
		fail(fmt.Errorf("unknown -sw %q (want ip or op)", *sw))
	}

	var coo *matrix.COO
	switch *mkind {
	case "uniform":
		coo = gen.Uniform(*n, *nnz, gen.Pattern, *seed)
	case "powerlaw":
		coo = gen.PowerLaw(*n, *nnz, 0.6, gen.Pattern, *seed)
	default:
		fail(fmt.Errorf("unknown -matrix %q", *mkind))
	}
	f := gen.Frontier(*n, *density, *seed+1)

	// The kernels consume the matrix through the storage seam, so the
	// same partition code runs whichever format holds the operand.
	var st matrix.Store = coo
	mf, err := matrix.ParseFormat(*format)
	switch {
	case strings.ToLower(*format) == "auto":
		mf = matrix.AutoSelect(coo)
	case err != nil:
		fail(fmt.Errorf("unknown -format %q (want auto, csr, dvcsr, or bbcsr)", *format))
	}
	switch mf {
	case matrix.FormatDVCSR:
		d, err := matrix.EncodeDVCSR(coo)
		if err != nil {
			fail(err)
		}
		st = d
	case matrix.FormatBBCSR:
		b, err := matrix.EncodeBBCSR(coo)
		if err != nil {
			fail(err)
		}
		st = b
	}

	useIP := strings.ToLower(*sw) == "ip"
	hwName := strings.ToLower(*hw)
	if hwName == "" {
		if useIP {
			hwName = "sc"
		} else {
			hwName = "pc"
		}
	}
	var hwc sim.HWConfig
	switch hwName {
	case "sc":
		hwc = sim.SC
	case "scs":
		hwc = sim.SCS
	case "pc":
		hwc = sim.PC
	case "ps":
		hwc = sim.PS
	default:
		fail(fmt.Errorf("unknown -hw %q", *hw))
	}

	bal := kernels.BalanceNNZ
	if !*balance {
		bal = kernels.BalanceRows
	}
	g := sim.Geometry{Tiles: *tiles, PEsPerTile: *pes}
	cfg := sim.NewConfig(g, hwc)
	cfg.Params.DecodePEs = *decodePE
	op := kernels.Operand{Ring: semiring.SpMV()}

	be, err := exec.ByName(*backend)
	if err != nil {
		fail(err)
	}

	var res exec.Result
	if useIP {
		vb := sim.NewConfig(g, sim.SCS).SPMWordsPerTile()
		part := kernels.NewIPPartition(st, g.TotalPEs(), vb, bal)
		_, res = be.IP(cfg, part, f.ToDense(0), op)
	} else {
		part := kernels.NewOPPartition(st, g.Tiles, bal)
		_, res = be.OP(cfg, part, f, op)
	}

	fmt.Printf("matrix: %s n=%d nnz=%d (density %.2e) stored as %s (%d bytes); frontier density %g (%d active)\n",
		*mkind, coo.R, coo.NNZ(), coo.Density(), st.Format(), st.ResidentBytes(), *density, f.NNZ())
	fmt.Printf("config: %s %s %s, %s, %s backend\n", g, strings.ToUpper(*sw), hwc, bal, be.Name())
	if !be.Simulated() {
		// The native backend has no cycle model: the kernel ran for real
		// on the host, so wall-clock is the whole story.
		fmt.Printf("wall: %v on %d procs\n", res.Wall, runtime.GOMAXPROCS(0))
		return
	}
	fmt.Printf("cycles: %d (%.3g ms @ 1 GHz)\n", res.Cycles, float64(res.Cycles)/1e6)
	fmt.Printf("energy: %.4g J  avg power: %.4g W\n", res.EnergyJ, sim.Power(cfg, res.Stats))
	s := res.Stats
	fmt.Printf("events: alu=%d loads=%d (stream %d) stores=%d\n", s.ALUOps, s.Loads, s.StreamLoads, s.Stores)
	fmt.Printf("  L1 %d hits / %d misses, L2 %d hits / %d misses\n",
		s.L1Hits, s.L1Misses, s.L2Hits, s.L2Misses)
	fmt.Printf("  HBM %d read lines (%d queued cycles), %d write lines (%d queued cycles)\n",
		s.HBMLines, s.HBMQueued, s.HBMWriteLines, s.HBMWriteQueued)
	fmt.Printf("  SPM %d reads / %d writes, xbar %d hops, %d prefetches, %d writebacks\n",
		s.SPMReads, s.SPMWrites, s.XbarHops, s.Prefetches, s.Writebacks)
	fmt.Printf("  stall cycles (all PEs): %d\n", s.StallCycles)
	if s.DecodeCycles > 0 || s.HBMCompressedLines > 0 {
		fmt.Printf("  decode PEs: %d cycles, %d compressed lines (%+d lines saved vs raw)\n",
			s.DecodeCycles, s.HBMCompressedLines, s.HBMSavedLines)
	}
	fmt.Printf("  L1 hit rate %.1f%%, L2 hit rate %.1f%%, HBM bandwidth %.2f GB/s, PE balance %.2f\n",
		100*s.L1HitRate(), 100*s.L2HitRate(), s.HBMBandwidthGBs(cfg.Params.BlockBytes), res.Balance)
	b := sim.EnergyBreakdown(cfg, s)
	fmt.Printf("energy breakdown: alu %.3g  spm %.3g  L1 %.3g  L2 %.3g  xbar %.3g  hbm %.3g  stores %.3g  static %.3g (J)\n",
		b.ALU, b.SPM, b.L1, b.L2, b.Xbar, b.HBM, b.Stores, b.Static)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "spmvrun: %v\n", err)
	os.Exit(1)
}
