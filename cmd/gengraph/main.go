// Command gengraph generates synthetic graphs (uniform, power-law,
// RMAT, or Table III suite stand-ins) as SNAP-style edge lists, for use
// with cmd/cosparse or any other tool.
//
// Usage:
//
//	gengraph -kind powerlaw -n 100000 -e 1000000 -o graph.txt
//	gengraph -kind suite:pokec -scale 64 -o pokec64.txt
//	gengraph -kind rmat -rmat-scale 16 -e 500000 -weighted -o rmat.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cosparse/internal/gen"
	"cosparse/internal/matrix"
)

func main() {
	kind := flag.String("kind", "powerlaw", "uniform, powerlaw, rmat, or suite:NAME")
	n := flag.Int("n", 10000, "vertices (uniform/powerlaw)")
	e := flag.Int("e", 100000, "edges")
	rmatScale := flag.Uint("rmat-scale", 14, "log2(vertices) for rmat")
	scale := flag.Int("scale", 64, "downscale factor for suite graphs")
	skew := flag.Float64("skew", 0.55, "power-law exponent")
	weighted := flag.Bool("weighted", false, "attach uniform (0,1] weights")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print degree-distribution statistics to stderr")
	flag.Parse()

	if *n <= 0 || *e < 0 {
		fail(fmt.Errorf("-n must be positive and -e non-negative, got %d/%d", *n, *e))
	}
	if *scale <= 0 {
		fail(fmt.Errorf("-scale must be positive, got %d", *scale))
	}
	if *rmatScale == 0 || *rmatScale > 30 {
		fail(fmt.Errorf("-rmat-scale must be in [1,30], got %d", *rmatScale))
	}
	if *skew <= 0 || *skew >= 1 {
		fail(fmt.Errorf("-skew must be in (0,1), got %g", *skew))
	}

	mode := gen.Pattern
	if *weighted {
		mode = gen.UniformWeight
	}

	var m *matrix.COO
	var desc string
	switch {
	case *kind == "uniform":
		m = gen.Uniform(*n, *e, mode, *seed)
		desc = fmt.Sprintf("uniform n=%d e=%d seed=%d", *n, *e, *seed)
	case *kind == "powerlaw":
		m = gen.PowerLaw(*n, *e, *skew, mode, *seed)
		desc = fmt.Sprintf("powerlaw n=%d e=%d skew=%g seed=%d", *n, *e, *skew, *seed)
	case *kind == "rmat":
		m = gen.RMAT(*rmatScale, *e, mode, *seed)
		desc = fmt.Sprintf("rmat scale=%d e=%d seed=%d", *rmatScale, *e, *seed)
	case strings.HasPrefix(*kind, "suite:"):
		name := strings.TrimPrefix(*kind, "suite:")
		spec, err := gen.SpecByName(name)
		if err != nil {
			fail(err)
		}
		m = spec.Build(*scale, mode, *seed)
		desc = fmt.Sprintf("suite %s 1/%d seed=%d", name, *scale, *seed)
	default:
		fail(fmt.Errorf("unknown -kind %q", *kind))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := gen.WriteEdgeList(w, m, desc); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %d vertices, %d edges (%s)\n", m.R, m.NNZ(), desc)
	if *stats {
		printStats(m)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
	os.Exit(1)
}

// printStats reports the degree-distribution shape of the generated
// graph (enabled with -stats).
func printStats(m *matrix.COO) {
	rs, cs := gen.RowStats(m), gen.ColStats(m)
	fmt.Fprintf(os.Stderr, "  in-degree : max %d  mean %.2f  cv %.2f  gini %.2f  isolated %d\n",
		rs.Max, rs.Mean, rs.CV, rs.Gini, rs.Zeroes)
	fmt.Fprintf(os.Stderr, "  out-degree: max %d  mean %.2f  cv %.2f  gini %.2f  isolated %d\n",
		cs.Max, cs.Mean, cs.CV, cs.Gini, cs.Zeroes)
}
