package main

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestBenchService is the overload-robustness gate: it runs the full
// load harness against a self-hosted service and asserts graceful
// degradation — goodput at 2x the saturation knee must retain at least
// 80% of goodput at the knee. Without admission control this collapses
// (every accepted job waits past its deadline); with CoDel-style
// shedding the excess bounces at submit and the pool keeps its
// throughput. Gated behind BENCH_SERVICE; results land in
// BENCH_service.json at the repo root (make bench-service).
func TestBenchService(t *testing.T) {
	if os.Getenv("BENCH_SERVICE") == "" {
		t.Skip("set BENCH_SERVICE=1 to run the overload load harness")
	}

	rep, err := runBench(Options{
		Workers:    2,
		QueueDepth: 32,
		Duration:   2 * time.Second,
		Log:        testWriter{t},
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}

	if len(rep.Points) < 3 {
		t.Fatalf("measured %d QPS points, want >= 3", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Offered == 0 {
			t.Fatalf("point %.1f qps offered no load", p.TargetQPS)
		}
		if p.Done > 0 && (p.P50Ms <= 0 || p.P99Ms < p.P50Ms) {
			t.Fatalf("point %.1f qps: implausible latencies p50=%.2f p99=%.2f", p.TargetQPS, p.P50Ms, p.P99Ms)
		}
	}
	over := rep.Points[2]
	if over.Shed == 0 {
		t.Fatalf("no submissions shed at 2x capacity (%.1f qps offered %d); admission control is not engaging", over.TargetQPS, over.Offered)
	}
	if rep.Retention < 0.8 {
		t.Fatalf("goodput retention at 2x overload = %.2f (knee %.1f/s, overload %.1f/s), want >= 0.8",
			rep.Retention, rep.KneeGoodputQPS, rep.OverloadGoodputQPS)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("../../BENCH_service.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatalf("write BENCH_service.json: %v", err)
	}
	t.Logf("knee %.1f/s, overload %.1f/s, retention %.2f (shed rate at 2x: %.1f%%)",
		rep.KneeGoodputQPS, rep.OverloadGoodputQPS, rep.Retention, over.ShedRate*100)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
