// Command cosparse-bench is the open-loop load harness for cosparsed:
// it estimates the service's saturation throughput (the knee) with a
// closed-loop calibration pass, then drives it open-loop at 0.5x, 1x
// and 2x that rate, recording p50/p99 latency, goodput (deadline-met
// completions per second) and shed rate at each point into
// BENCH_service.json.
//
// The headline number is goodput retention: goodput at 2x the knee
// divided by goodput at the knee. A service without load shedding
// collapses there (every job waits past its deadline, retention ~0); a
// robust one sheds the excess at admission and keeps retention near 1.
//
// Usage:
//
//	cosparse-bench                     # self-host, defaults
//	cosparse-bench -duration 5s -workers 4 -queue 64
//	cosparse-bench -url http://localhost:8080   # drive a running daemon
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	url := flag.String("url", "", "base URL of a running cosparsed to drive (empty = self-host a service in-process)")
	workers := flag.Int("workers", 2, "worker pool size for the self-hosted service")
	queue := flag.Int("queue", 32, "queue depth for the self-hosted service")
	duration := flag.Duration("duration", 2*time.Second, "open-loop measurement window per QPS point")
	calibrate := flag.Duration("calibrate", 1500*time.Millisecond, "closed-loop calibration window for the knee estimate")
	tenants := flag.Int("tenants", 4, "tenant labels submissions rotate through")
	timeoutMs := flag.Int64("job-timeout-ms", 1500, "per-job deadline; only jobs finishing inside it count as goodput")
	out := flag.String("out", "BENCH_service.json", "output report path")
	flag.Parse()

	rep, err := runBench(Options{
		URL:          *url,
		Workers:      *workers,
		QueueDepth:   *queue,
		Duration:     *duration,
		CalibrateFor: *calibrate,
		Tenants:      *tenants,
		TimeoutMs:    *timeoutMs,
		Log:          os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosparse-bench: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosparse-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cosparse-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
