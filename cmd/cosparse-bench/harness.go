package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cosparse/internal/service"
)

// Options configures one load-harness run.
type Options struct {
	// URL targets an already-running daemon; empty self-hosts a service
	// on a loopback listener with Workers/QueueDepth below.
	URL        string
	Workers    int
	QueueDepth int
	// Duration is the open-loop measurement window per QPS point.
	Duration time.Duration
	// CalibrateFor is the closed-loop window used to estimate the
	// knee (saturation throughput) before the open-loop points run.
	CalibrateFor time.Duration
	// Tenants is how many tenant labels submissions rotate through.
	Tenants int
	// TimeoutMs is the per-job deadline; a job is goodput only if it
	// finishes (done) — jobs that blow the deadline fail and do not
	// count.
	TimeoutMs int64
	// Log receives harness progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 32
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.CalibrateFor <= 0 {
		o.CalibrateFor = 1500 * time.Millisecond
	}
	if o.Tenants <= 0 {
		o.Tenants = 4
	}
	if o.TimeoutMs <= 0 {
		o.TimeoutMs = 1500
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	return o
}

// Point is the measured outcome of one open-loop QPS level.
type Point struct {
	TargetQPS float64 `json:"target_qps"`
	Offered   int     `json:"offered"`
	Accepted  int     `json:"accepted"`
	Shed      int     `json:"shed"`
	Done      int     `json:"done"`
	Failed    int     `json:"failed"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// GoodputQPS counts deadline-met completions per second of the
	// submission window.
	GoodputQPS float64 `json:"goodput_qps"`
	// ShedRate is shed (429) submissions over offered.
	ShedRate float64 `json:"shed_rate"`
}

// Report is the BENCH_service.json shape.
type Report struct {
	Workers     int     `json:"workers"`
	QueueDepth  int     `json:"queue_depth"`
	DurationSec float64 `json:"duration_sec"`
	// CapacityQPS is the closed-loop saturation throughput (the knee).
	CapacityQPS float64 `json:"capacity_qps"`
	Points      []Point `json:"points"`
	// KneeGoodputQPS / OverloadGoodputQPS are the goodputs at the 1x
	// and 2x capacity points; Retention is their ratio — the graceful-
	// degradation headline (1.0 = overload costs nothing; a collapsing
	// service goes to ~0).
	KneeGoodputQPS     float64 `json:"knee_goodput_qps"`
	OverloadGoodputQPS float64 `json:"overload_goodput_qps"`
	Retention          float64 `json:"retention"`
}

// client is tuned for many short keep-alive requests against one host.
var client = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 512,
		IdleConnTimeout:     30 * time.Second,
	},
	Timeout: 30 * time.Second,
}

// selfHost starts a service on a loopback listener and returns its
// base URL and a shutdown func.
func selfHost(opts Options) (string, func(), error) {
	svc := service.New(service.Config{
		Workers:    opts.Workers,
		QueueDepth: opts.QueueDepth,
		// Overload controls tuned for a bench-scale service: shed once
		// queued work stands for a quarter second.
		ShedTarget:   250 * time.Millisecond,
		ShedInterval: 50 * time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	stop := func() {
		srv.Close()
		svc.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func postJSON(base, path string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %q: %w", data, err)
		}
	}
	return resp.StatusCode, nil
}

// registerBenchGraph registers the fixed workload graph and returns
// its id. The graph is big enough that one pr job costs a few
// milliseconds — small enough to saturate quickly, large enough that
// queueing dynamics are real.
func registerBenchGraph(base string) (string, error) {
	var info service.GraphInfo
	code, err := postJSON(base, "/v1/graphs", service.GraphSpec{
		Kind: "powerlaw", Vertices: 5000, Edges: 25000, Seed: 42,
	}, &info)
	if err != nil {
		return "", err
	}
	if code != http.StatusCreated {
		return "", fmt.Errorf("register graph: status %d", code)
	}
	return info.ID, nil
}

func benchJob(gid, tenant string, timeoutMs int64) service.JobRequest {
	return service.JobRequest{
		GraphID: gid, Algo: "pr", Iterations: 5,
		Tenant: tenant, TimeoutMs: timeoutMs,
	}
}

// waitTerminal polls the job until it leaves queued/running and
// reports whether it finished done (deadline met).
func waitTerminal(base, id string, deadline time.Time) (bool, error) {
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return false, err
		}
		var st service.JobStatus
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &st); err != nil {
			return false, fmt.Errorf("poll %s: decode %q: %w", id, data, err)
		}
		switch st.State {
		case service.JobDone:
			return true, nil
		case service.JobFailed, service.JobCancelled:
			return false, nil
		}
		time.Sleep(4 * time.Millisecond)
	}
	return false, nil
}

// calibrate measures closed-loop saturation throughput: 2x workers
// clients submit-wait-repeat for the calibration window. The result is
// the knee — the offered load beyond which queues only grow.
func calibrate(base, gid string, opts Options) (float64, error) {
	clients := opts.Workers * 2
	stop := time.Now().Add(opts.CalibrateFor)
	var mu sync.Mutex
	var completed int
	var firstErr error
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("bench-%d", c%opts.Tenants)
			for time.Now().Before(stop) {
				var st service.JobStatus
				code, err := postJSON(base, "/v1/jobs", benchJob(gid, tenant, opts.TimeoutMs), &st)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if code != http.StatusAccepted {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				ok, err := waitTerminal(base, st.ID, time.Now().Add(10*time.Second))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if ok {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	qps := float64(completed) / opts.CalibrateFor.Seconds()
	if qps < 1 {
		return 0, fmt.Errorf("calibration completed %d jobs in %v; service is not making progress", completed, opts.CalibrateFor)
	}
	return qps, nil
}

// runPoint drives the service open-loop at target QPS for the
// configured window: submissions fire on a fixed clock regardless of
// how the service is coping (that is what makes overload overload),
// then every accepted job gets its full deadline to finish.
func runPoint(base, gid string, qps float64, opts Options) (Point, error) {
	p := Point{TargetQPS: qps}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.Now().Add(opts.Duration)

	var mu sync.Mutex
	var latencies []float64
	var firstErr error
	var wg sync.WaitGroup
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	n := 0
	for time.Now().Before(stop) {
		<-ticker.C
		n++
		p.Offered++
		tenant := fmt.Sprintf("bench-%d", n%opts.Tenants)
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			var st service.JobStatus
			code, err := postJSON(base, "/v1/jobs", benchJob(gid, tenant, opts.TimeoutMs), &st)
			if err != nil {
				fail(err)
				return
			}
			switch {
			case code == http.StatusAccepted:
			case code == http.StatusTooManyRequests:
				mu.Lock()
				p.Shed++
				mu.Unlock()
				return
			default:
				fail(fmt.Errorf("submit: status %d", code))
				return
			}
			mu.Lock()
			p.Accepted++
			mu.Unlock()
			ok, err := waitTerminal(base, st.ID, t0.Add(time.Duration(opts.TimeoutMs)*time.Millisecond+5*time.Second))
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			if ok {
				p.Done++
				latencies = append(latencies, time.Since(t0).Seconds()*1e3)
			} else {
				p.Failed++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return p, firstErr
	}
	sort.Float64s(latencies)
	if len(latencies) > 0 {
		p.P50Ms = latencies[len(latencies)/2]
		p.P99Ms = latencies[len(latencies)*99/100]
	}
	p.GoodputQPS = float64(p.Done) / opts.Duration.Seconds()
	if p.Offered > 0 {
		p.ShedRate = float64(p.Shed) / float64(p.Offered)
	}
	return p, nil
}

// runBench is the whole harness: self-host (or attach), calibrate the
// knee closed-loop, then measure open-loop at 0.5x, 1x and 2x the
// knee.
func runBench(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	base := opts.URL
	if base == "" {
		var stop func()
		var err error
		base, stop, err = selfHost(opts)
		if err != nil {
			return nil, err
		}
		defer stop()
	}
	gid, err := registerBenchGraph(base)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(opts.Log, "calibrating against %s (%v closed-loop)...\n", base, opts.CalibrateFor)
	capacity, err := calibrate(base, gid, opts)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(opts.Log, "knee estimate: %.1f jobs/s\n", capacity)

	rep := &Report{
		Workers:     opts.Workers,
		QueueDepth:  opts.QueueDepth,
		DurationSec: opts.Duration.Seconds(),
		CapacityQPS: capacity,
	}
	for _, factor := range []float64{0.5, 1, 2} {
		qps := capacity * factor
		if qps < 1 {
			qps = 1
		}
		pt, err := runPoint(base, gid, qps, opts)
		if err != nil {
			return nil, fmt.Errorf("point %.0f%%: %w", factor*100, err)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(opts.Log,
			"%4.0f%% capacity (%6.1f qps): goodput %6.1f/s  p50 %6.1fms  p99 %6.1fms  shed %4.1f%%\n",
			factor*100, pt.TargetQPS, pt.GoodputQPS, pt.P50Ms, pt.P99Ms, pt.ShedRate*100)
		// Let the queue drain (and the shedding controller disarm)
		// before the next point so measurements stay independent.
		time.Sleep(500 * time.Millisecond)
	}
	rep.KneeGoodputQPS = rep.Points[1].GoodputQPS
	rep.OverloadGoodputQPS = rep.Points[2].GoodputQPS
	if rep.KneeGoodputQPS > 0 {
		rep.Retention = rep.OverloadGoodputQPS / rep.KneeGoodputQPS
	}
	fmt.Fprintf(opts.Log, "goodput retention at 2x overload: %.2f\n", rep.Retention)
	return rep, nil
}
