// Command experiments regenerates the tables and figures of the
// CoSPARSE paper (DAC 2021) on the simulator.
//
// Usage:
//
//	experiments -fig all -scale small
//	experiments -fig 4 -scale tiny
//	experiments -fig 9 -scale full -out fig9.txt
//
// Figures: 4, 5, 6, 7, 8, 9, 10, table1, table2, table3, all; plus
// "calibrate" (re-derive the decision-tree thresholds from a fresh
// Fig. 4 sweep, §III-C), "scaling" (the §III-C3 4x8→8x8 study) and
// "reconfig" (auto vs static configurations, §IV-C2). The -chart flag
// renders the Fig. 4-6 sweeps as ASCII plots.
// Scales: tiny (1/64, seconds), small (1/16, minutes — the committed
// results in EXPERIMENTS.md), full (published sizes, hours).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cosparse/internal/bench"
)

func sweepCharts(res *bench.SweepResult, title, ylabel string, hline float64) []string {
	var out []string
	for _, m := range res.Matrices {
		out = append(out, res.SweepChart(m.Name, title, ylabel, hline).String())
	}
	return out
}

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate: 4..10, table1..table3, or all")
	scaleName := flag.String("scale", "small", "workload scale: tiny, small, full")
	out := flag.String("out", "", "write output to this file instead of stdout")
	format := flag.String("format", "text", "output format: text, csv, json")
	chart := flag.Bool("chart", false, "also render ASCII charts for the Fig. 4-6 sweeps")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "tiny":
		scale = bench.ScaleTiny
	case "small":
		scale = bench.ScaleSmall
	case "full":
		scale = bench.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want tiny, small or full)\n", *scaleName)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	charts := map[string]func(bench.Scale) []string{
		"4": func(s bench.Scale) []string {
			res, _ := bench.Fig4(s)
			return sweepCharts(res, "Fig. 4 — OP vs IP speedup", "OP/IP", 1.0)
		},
		"5": func(s bench.Scale) []string {
			res, _ := bench.Fig5(s)
			return sweepCharts(res, "Fig. 5 — SCS vs SC gain", "gain", 0)
		},
		"6": func(s bench.Scale) []string {
			res, _ := bench.Fig6(s)
			return sweepCharts(res, "Fig. 6 — PS vs PC gain", "gain", 0)
		},
	}

	runners := map[string]func(bench.Scale) *bench.Table{
		"table1": func(bench.Scale) *bench.Table { return bench.TableI() },
		"table2": func(bench.Scale) *bench.Table { return bench.TableII() },
		"table3": func(s bench.Scale) *bench.Table { return bench.TableIII(s) },
		"4":      func(s bench.Scale) *bench.Table { _, t := bench.Fig4(s); return t },
		"5":      func(s bench.Scale) *bench.Table { _, t := bench.Fig5(s); return t },
		"6":      func(s bench.Scale) *bench.Table { _, t := bench.Fig6(s); return t },
		"7":      func(s bench.Scale) *bench.Table { _, t := bench.Fig7(s); return t },
		"8":      func(s bench.Scale) *bench.Table { _, t := bench.Fig8(s); return t },
		"9":      func(s bench.Scale) *bench.Table { _, t := bench.Fig9(s); return t },
		"10":     func(s bench.Scale) *bench.Table { _, t := bench.Fig10(s); return t },
		"calibrate": func(s bench.Scale) *bench.Table {
			_, t := bench.Calibrate(s)
			return t
		},
		"scaling": func(s bench.Scale) *bench.Table {
			_, t := bench.ScalingStudy(s)
			return t
		},
		"reconfig": func(s bench.Scale) *bench.Table {
			_, t := bench.AutoVsStatic(s)
			return t
		},
	}
	order := []string{"table1", "table2", "table3", "4", "5", "6", "7", "8", "9", "10"}

	want := strings.Split(*fig, ",")
	if *fig == "all" {
		want = order
	}
	for _, name := range want {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q (want %s or all)\n",
				name, strings.Join(order, ", "))
			os.Exit(2)
		}
		if *chart {
			if cf, ok := charts[name]; ok {
				for _, c := range cf(scale) {
					fmt.Fprintln(w, c)
				}
				continue
			}
		}
		start := time.Now()
		tbl := run(scale)
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("regenerated in %v", time.Since(start).Round(time.Millisecond)))
		var err error
		switch *format {
		case "text":
			tbl.Fprint(w)
		case "csv":
			err = tbl.WriteCSV(w)
		case "json":
			err = tbl.WriteJSON(w)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown -format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
