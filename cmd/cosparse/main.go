// Command cosparse runs a graph-analytics algorithm on the CoSPARSE
// framework (simulated reconfigurable hardware) and prints the
// per-iteration reconfiguration trace and the run report.
//
// Usage:
//
//	cosparse -algo sssp -graph suite:pokec -graph-scale 64 -tiles 16 -pes 16
//	cosparse -algo pr -graph powerlaw:100000:1000000 -iters 10
//	cosparse -algo bfs -graph edges.txt -src 0
//	cosparse -algo bfs -graph edges.txt -sw ip -hw scs   # pin a configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cosparse"
)

func main() {
	algo := flag.String("algo", "pr", "algorithm: bfs, sssp, pr, cf")
	graph := flag.String("graph", "powerlaw:10000:100000", "graph: FILE, suite:NAME, uniform:N:E, or powerlaw:N:E")
	graphScale := flag.Int("graph-scale", 64, "downscale factor for suite graphs (1 = published size)")
	undirected := flag.Bool("undirected", false, "treat an edge-list file as undirected")
	tiles := flag.Int("tiles", 16, "tiles in the simulated machine")
	pes := flag.Int("pes", 16, "PEs per tile")
	src := flag.Int("src", -1, "source vertex for bfs/sssp (-1 = highest out-degree)")
	iters := flag.Int("iters", 10, "iterations for pr/cf")
	alpha := flag.Float64("alpha", 0.15, "PageRank damping factor")
	beta := flag.Float64("beta", 0.05, "CF learning rate")
	lambda := flag.Float64("lambda", 0.01, "CF regularization")
	seed := flag.Uint64("seed", 42, "generator seed")
	backend := flag.String("backend", "sim", "execution backend: sim (cycle-accurate timing model) or native (goroutine-parallel host run)")
	format := flag.String("format", "auto", "graph storage format: auto, csr, dvcsr (delta-varint), or bbcsr (bitmap-block)")
	sw := flag.String("sw", "auto", "software configuration: auto, ip, op")
	hw := flag.String("hw", "auto", "hardware configuration: auto, sc, scs, pc, ps")
	printTrace := flag.Bool("print-trace", true, "print the per-iteration reconfiguration trace")
	traceOut := flag.String("trace", "", "write the per-iteration trace as JSON to this file")
	jsonOut := flag.String("json", "", "write the report as JSON to this file")
	csvOut := flag.String("csv", "", "write the per-iteration trace as CSV to this file")
	flag.Parse()

	a, err := cosparse.ParseAlgo(*algo)
	if err != nil {
		fail(err)
	}
	if *tiles <= 0 || *pes <= 0 {
		fail(fmt.Errorf("-tiles and -pes must be positive, got %d/%d", *tiles, *pes))
	}
	if *iters <= 0 {
		fail(fmt.Errorf("-iters must be positive, got %d", *iters))
	}
	if *graphScale <= 0 {
		fail(fmt.Errorf("-graph-scale must be positive, got %d", *graphScale))
	}
	if *src < -1 {
		fail(fmt.Errorf("-src must be a vertex id or -1 for highest out-degree, got %d", *src))
	}

	g, err := loadGraph(*graph, *graphScale, *undirected, a.ValueMode(), *seed)
	if err != nil {
		fail(err)
	}
	gf, err := cosparse.ParseFormat(*format)
	if err != nil {
		fail(err)
	}
	if g, err = g.InFormat(gf); err != nil {
		fail(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, density %.2e, format %s (%d resident bytes)\n",
		g.NumVertices(), g.NumEdges(), g.Density(), g.Format(), g.ResidentBytes())

	be, err := cosparse.ParseBackend(*backend)
	if err != nil {
		fail(err)
	}
	opts := []cosparse.Option{cosparse.WithBackend(be)}
	switch strings.ToLower(*sw) {
	case "auto":
	case "ip":
		opts = append(opts, cosparse.WithSoftware(cosparse.InnerProduct))
	case "op":
		opts = append(opts, cosparse.WithSoftware(cosparse.OuterProduct))
	default:
		fail(fmt.Errorf("unknown -sw %q", *sw))
	}
	switch strings.ToLower(*hw) {
	case "auto":
	case "sc":
		opts = append(opts, cosparse.WithHardware(cosparse.ForceSC))
	case "scs":
		opts = append(opts, cosparse.WithHardware(cosparse.ForceSCS))
	case "pc":
		opts = append(opts, cosparse.WithHardware(cosparse.ForcePC))
	case "ps":
		opts = append(opts, cosparse.WithHardware(cosparse.ForcePS))
	default:
		fail(fmt.Errorf("unknown -hw %q", *hw))
	}

	eng, err := cosparse.New(g, cosparse.System{Tiles: *tiles, PEsPerTile: *pes}, opts...)
	if err != nil {
		fail(err)
	}

	s := int32(*src)
	if s < 0 {
		s = maxDegree(g)
	}
	if a.NeedsSource() && int(s) >= g.NumVertices() {
		fail(fmt.Errorf("-src %d out of range [0,%d)", s, g.NumVertices()))
	}

	var rep *cosparse.Report
	switch a {
	case cosparse.AlgoBFS:
		var res *cosparse.BFSResult
		res, rep, err = eng.BFS(s)
		if err == nil {
			reached := 0
			for _, l := range res.Level {
				if l >= 0 {
					reached++
				}
			}
			fmt.Printf("bfs from %d: reached %d/%d vertices\n", s, reached, g.NumVertices())
		}
	case cosparse.AlgoSSSP:
		var dist []float32
		dist, rep, err = eng.SSSP(s)
		if err == nil {
			sum, n := 0.0, 0
			for _, d := range dist {
				if d < float32(1e30) {
					sum += float64(d)
					n++
				}
			}
			fmt.Printf("sssp from %d: reached %d vertices, mean distance %.4f\n", s, n, sum/float64(max(n, 1)))
		}
	case cosparse.AlgoPageRank:
		var pr []float32
		pr, rep, err = eng.PageRank(*iters, float32(*alpha))
		if err == nil {
			best, bv := 0, float32(0)
			for i, v := range pr {
				if v > bv {
					best, bv = i, v
				}
			}
			fmt.Printf("pagerank: top vertex %d with score %.5f\n", best, bv)
		}
	case cosparse.AlgoCF:
		_, rep, err = eng.CF(*iters, float32(*beta), float32(*lambda))
		if err == nil {
			fmt.Printf("cf: trained %d iterations\n", *iters)
		}
	}
	if err != nil {
		fail(err)
	}

	fmt.Println(rep.Summary())
	if *printTrace {
		fmt.Print(rep.Trace())
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, rep.WriteTraceJSON); err != nil {
			fail(err)
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, rep.WriteJSON); err != nil {
			fail(err)
		}
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, rep.WriteCSV); err != nil {
			fail(err)
		}
	}
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func loadGraph(spec string, scale int, undirected bool, mode cosparse.ValueMode, seed uint64) (*cosparse.Graph, error) {
	switch {
	case strings.HasPrefix(spec, "suite:"):
		name := strings.TrimPrefix(spec, "suite:")
		if name == "" {
			return nil, fmt.Errorf("malformed -graph %q: want suite:NAME", spec)
		}
		return cosparse.GenerateSuite(name, scale, mode, seed)
	case strings.HasPrefix(spec, "uniform:"), strings.HasPrefix(spec, "powerlaw:"):
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("malformed -graph %q: want %s:N:E", spec, parts[0])
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("malformed -graph %q: bad vertex count: %v", spec, err)
		}
		e, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("malformed -graph %q: bad edge count: %v", spec, err)
		}
		if n <= 0 || e < 0 {
			return nil, fmt.Errorf("malformed -graph %q: need positive vertices and non-negative edges", spec)
		}
		if parts[0] == "uniform" {
			return cosparse.GenerateUniform(n, e, mode, seed)
		}
		return cosparse.GeneratePowerLaw(n, e, mode, seed)
	default:
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return cosparse.LoadEdgeList(f, undirected)
	}
}

func maxDegree(g *cosparse.Graph) int32 {
	best := int32(0)
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if g.OutDegree(v) > g.OutDegree(best) {
			best = v
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	// Library errors already carry the package prefix; don't double it.
	fmt.Fprintf(os.Stderr, "cosparse: %s\n", strings.TrimPrefix(err.Error(), "cosparse: "))
	os.Exit(1)
}
