package main

import (
	"os"
	"path/filepath"
	"testing"

	"cosparse"
)

func TestLoadGraphGenerators(t *testing.T) {
	g, err := loadGraph("uniform:500:2000", 1, false, cosparse.Unweighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("vertices %d", g.NumVertices())
	}
	g2, err := loadGraph("powerlaw:300:1500", 1, false, cosparse.Weighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 300 {
		t.Fatalf("vertices %d", g2.NumVertices())
	}
	g3, err := loadGraph("suite:twitter", 64, false, cosparse.Unweighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != 81306/64 {
		t.Fatalf("suite vertices %d", g3.NumVertices())
	}
}

func TestLoadGraphErrors(t *testing.T) {
	cases := []string{
		"uniform:500",      // missing edge count
		"uniform:x:2000",   // bad vertex count
		"powerlaw:300:y",   // bad edge count
		"suite:nonesuch",   // unknown suite graph
		"/no/such/file.el", // missing file
	}
	for _, spec := range cases {
		if _, err := loadGraph(spec, 1, false, cosparse.Unweighted, 1); err == nil {
			t.Errorf("loadGraph(%q) accepted bad input", spec)
		}
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, 1, false, cosparse.Unweighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("file graph %d/%d", g.NumVertices(), g.NumEdges())
	}
	und, err := loadGraph(path, 1, true, cosparse.Unweighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if und.NumEdges() != 6 {
		t.Fatalf("undirected edges %d, want 6", und.NumEdges())
	}
}

func TestWeightedByAlgo(t *testing.T) {
	if cosparse.AlgoSSSP.ValueMode() != cosparse.Weighted || cosparse.AlgoCF.ValueMode() != cosparse.Weighted {
		t.Fatal("sssp/cf must be weighted")
	}
	if cosparse.AlgoBFS.ValueMode() != cosparse.Unweighted || cosparse.AlgoPageRank.ValueMode() != cosparse.Unweighted {
		t.Fatal("bfs/pr must be unweighted")
	}
}

func TestLoadGraphMalformedSpecs(t *testing.T) {
	cases := []string{
		"suite:",            // missing suite name
		"uniform:0:100",     // non-positive vertices
		"powerlaw:100:-5",   // negative edges
		"uniform:1:2:3",     // too many parts
		"powerlaw:2.5:1000", // non-integer vertices
	}
	for _, spec := range cases {
		if _, err := loadGraph(spec, 1, false, cosparse.Unweighted, 1); err == nil {
			t.Errorf("loadGraph(%q) accepted malformed spec", spec)
		}
	}
}

func TestMaxDegreePicksHub(t *testing.T) {
	g, err := cosparse.NewGraph(4, []cosparse.Edge{
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}, {Src: 0, Dst: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := maxDegree(g); v != 2 {
		t.Fatalf("maxDegree = %d, want 2", v)
	}
}

func TestWriteTo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	g, _ := cosparse.GenerateUniform(50, 200, cosparse.Unweighted, 1)
	eng, _ := cosparse.New(g, cosparse.System{Tiles: 1, PEsPerTile: 2})
	_, rep, err := eng.PageRank(2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeTo(path, rep.WriteJSON); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty export")
	}
}
