package cosparse

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the report (including every iteration) for
// external tooling — plotting the Fig. 9-style traces, dashboards, etc.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTraceJSON serializes just the per-iteration decision trace plus
// the fields needed to interpret it (algorithm, system, totals,
// truncation counters) — the compact form the `-trace <file>` flags and
// the service's trace endpoint emit for offline analysis.
func (r *Report) WriteTraceJSON(w io.Writer) error {
	iters := r.TotalIterations
	if iters == 0 {
		iters = len(r.Iterations)
	}
	t := struct {
		Algorithm       string
		System          string
		Backend         string `json:",omitempty"`
		TotalIterations int
		TraceDropped    int `json:",omitempty"`
		TotalCycles     int64
		Iterations      []IterationStat
	}{
		Algorithm:       r.Algorithm,
		System:          r.System.String(),
		Backend:         r.Backend,
		TotalIterations: iters,
		TraceDropped:    r.TraceDropped,
		TotalCycles:     r.TotalCycles,
		Iterations:      r.Iterations,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV emits one row per iteration:
// iter,frontier,density,software,hardware,reconfigured,cycles,energy_j.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iter", "frontier", "density", "software", "hardware", "reconfigured", "cycles", "energy_j"}); err != nil {
		return err
	}
	for _, it := range r.Iterations {
		rec := []string{
			fmt.Sprintf("%d", it.Iter),
			fmt.Sprintf("%d", it.FrontierSize),
			fmt.Sprintf("%g", it.Density),
			it.Software,
			it.Hardware,
			fmt.Sprintf("%t", it.Reconfigured),
			fmt.Sprintf("%d", it.Cycles),
			fmt.Sprintf("%g", it.EnergyJ),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
