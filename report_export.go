package cosparse

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the report (including every iteration) for
// external tooling — plotting the Fig. 9-style traces, dashboards, etc.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits one row per iteration:
// iter,frontier,density,software,hardware,reconfigured,cycles,energy_j.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iter", "frontier", "density", "software", "hardware", "reconfigured", "cycles", "energy_j"}); err != nil {
		return err
	}
	for _, it := range r.Iterations {
		rec := []string{
			fmt.Sprintf("%d", it.Iter),
			fmt.Sprintf("%d", it.FrontierSize),
			fmt.Sprintf("%g", it.Density),
			it.Software,
			it.Hardware,
			fmt.Sprintf("%t", it.Reconfigured),
			fmt.Sprintf("%d", it.Cycles),
			fmt.Sprintf("%g", it.EnergyJ),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
