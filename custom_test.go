package cosparse

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// stringsBuilder adapts strings.Builder with a Reader helper for the
// round-trip tests.
type stringsBuilder struct{ strings.Builder }

func (s *stringsBuilder) Reader() *strings.Reader { return strings.NewReader(s.String()) }

// parseEdges parses the "src dst w" lines WriteEdgeList emits.
func parseEdges(t *testing.T, text string) []Edge {
	t.Helper()
	var edges []Edge
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		src, err1 := strconv.Atoi(f[0])
		dst, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("bad edge line %q", line)
		}
		w := 1.0
		if len(f) >= 3 {
			var err error
			w, err = strconv.ParseFloat(f[2], 32)
			if err != nil {
				t.Fatalf("bad weight in %q", line)
			}
		}
		edges = append(edges, Edge{Src: int32(src), Dst: int32(dst), Weight: float32(w)})
	}
	return edges
}

// Widest path (maximum bottleneck): a custom max-min semiring, checked
// against a reference fixed point.
func TestCustomWidestPath(t *testing.T) {
	g, err := GeneratePowerLaw(300, 3000, Weighted, 21)
	if err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t, g)

	src := int32(0)
	initial := make([]float32, g.NumVertices())
	initial[src] = float32(math.Inf(1)) // infinite capacity at the source

	ops := Operators{
		Name:     "widest",
		Identity: 0,
		MatrixOp: func(e EdgeCtx) float32 {
			if e.Weight < e.SrcVal {
				return e.Weight
			}
			return e.SrcVal
		},
		Reduce: func(a, b float32) float32 {
			if a > b {
				return a
			}
			return b
		},
		Improving: func(next, cur float32) bool { return next > cur },
	}
	got, rep, err := eng.Run(ops, initial, []int32{src}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) < 2 {
		t.Fatal("widest path converged suspiciously fast")
	}

	// Reference: Bellman-Ford-style fixed point on max-min.
	want := make([]float64, g.NumVertices())
	want[src] = math.Inf(1)
	edges := collectEdges(t, g)
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			cand := math.Min(want[e.Src], float64(e.Weight))
			if cand > want[e.Dst] {
				want[e.Dst] = cand
				changed = true
			}
		}
	}
	for v := range want {
		w := want[v]
		gv := float64(got[v])
		if math.IsInf(w, 1) != math.IsInf(gv, 1) {
			t.Fatalf("vertex %d: infinity mismatch (%g vs %g)", v, gv, w)
		}
		if !math.IsInf(w, 1) && math.Abs(w-gv) > 1e-3 {
			t.Fatalf("vertex %d: widest %g, want %g", v, gv, w)
		}
	}
}

// collectEdges recovers the edge list via the public edge-list writer.
func collectEdges(t *testing.T, g *Graph) []Edge {
	t.Helper()
	var sb stringsBuilder
	if err := g.WriteEdgeList(&sb, ""); err != nil {
		t.Fatal(err)
	}
	return parseEdges(t, sb.String())
}

func TestConnectedComponents(t *testing.T) {
	// Two obvious components: a path 0-1-2 and a pair 3-4 (symmetrized).
	g, err := NewGraph(6, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 1, PEsPerTile: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := eng.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 0, 3, 3, 5}
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestConnectedComponentsLargeAgreesWithBFS(t *testing.T) {
	base, err := GeneratePowerLaw(400, 1200, Unweighted, 33)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetrize through the edge list.
	var sb stringsBuilder
	if err := base.WriteEdgeList(&sb, ""); err != nil {
		t.Fatal(err)
	}
	g, err := LoadEdgeList(sb.Reader(), true)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 2, PEsPerTile: 4})
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := eng.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex must share its label with all BFS-reachable vertices
	// from that label's root.
	res, _, err := eng.BFS(labels[0])
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range res.Level {
		if l >= 0 && labels[v] != labels[labels[0]] {
			t.Fatalf("vertex %d reachable from root but in component %d", v, labels[v])
		}
	}
	// Labels must be canonical: the label of a component is its minimum
	// member, so label[label[v]] == label[v].
	for v := range labels {
		if labels[labels[v]] != labels[v] {
			t.Fatalf("label of %d is %d, whose label is %d", v, labels[v], labels[labels[v]])
		}
		if labels[v] > int32(v) {
			t.Fatalf("vertex %d has label %d > its own id", v, labels[v])
		}
	}
}

func TestCustomValidation(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	vals := make([]float32, g.NumVertices())

	if _, _, err := eng.Run(Operators{}, vals, nil, 0); err == nil {
		t.Error("accepted empty operators")
	}
	ops := Operators{
		MatrixOp:  func(e EdgeCtx) float32 { return e.SrcVal },
		Reduce:    func(a, b float32) float32 { return a + b },
		Improving: func(a, b float32) bool { return a != b },
	}
	if _, _, err := eng.Run(ops, vals[:3], []int32{0}, 0); err == nil {
		t.Error("accepted short value vector")
	}
	if _, _, err := eng.Run(ops, vals, []int32{-4}, 0); err == nil {
		t.Error("accepted out-of-range frontier vertex")
	}
	noImprove := Operators{
		MatrixOp: ops.MatrixOp,
		Reduce:   ops.Reduce,
	}
	if _, _, err := eng.Run(noImprove, vals, []int32{0}, 0); err == nil {
		t.Error("accepted sparse-frontier operators without Improving")
	}
}

func TestCustomDenseFrontierFixedIterations(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	vals := make([]float32, g.NumVertices())
	for i := range vals {
		vals[i] = 1
	}
	ops := Operators{
		Name:          "degree-sum",
		DenseFrontier: true,
		MatrixOp:      func(e EdgeCtx) float32 { return e.SrcVal },
		Reduce:        func(a, b float32) float32 { return a + b },
	}
	out, rep, err := eng.Run(ops, vals, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) != 3 {
		t.Fatalf("ran %d iterations, want 3", len(rep.Iterations))
	}
	// After one iteration out[v] = in-degree; just sanity-check totals
	// stay finite and positive somewhere.
	any := false
	for _, x := range out {
		if x > 0 {
			any = true
		}
		if math.IsNaN(float64(x)) {
			t.Fatal("NaN in custom dense run")
		}
	}
	if !any {
		t.Fatal("all-zero result")
	}
}
