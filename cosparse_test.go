package cosparse

import (
	"math"
	"strings"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GeneratePowerLaw(500, 5000, Weighted, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testEngine(t *testing.T, g *Graph, opts ...Option) *Engine {
	t.Helper()
	eng, err := New(g, System{Tiles: 2, PEsPerTile: 4}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewGraphFromEdges(t *testing.T) {
	g, err := NewGraph(4, []Edge{
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3, Weight: 0.5},
		{Src: 0, Dst: 2, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 0 {
		t.Fatalf("out-degrees wrong: %d, %d", g.OutDegree(0), g.OutDegree(3))
	}
	if g.OutDegree(-1) != 0 || g.OutDegree(99) != 0 {
		t.Fatal("out-of-range OutDegree should be 0")
	}
}

func TestNewGraphRejectsBadEdges(t *testing.T) {
	if _, err := NewGraph(2, []Edge{{Src: 0, Dst: 5}}); err == nil {
		t.Fatal("accepted out-of-range destination")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := testGraph(t)
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb, "round trip"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(strings.NewReader(sb.String()), false)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges %d, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestGenerateSuite(t *testing.T) {
	g, err := GenerateSuite("twitter", 16, Unweighted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 81306/16 {
		t.Fatalf("scaled vertices %d", g.NumVertices())
	}
	if _, err := GenerateSuite("nonesuch", 1, Unweighted, 2); err == nil {
		t.Fatal("accepted unknown suite graph")
	}
}

func TestGenerateRejectsBadSizes(t *testing.T) {
	if _, err := GenerateUniform(0, 10, Unweighted, 1); err == nil {
		t.Fatal("accepted zero vertices")
	}
	if _, err := GeneratePowerLaw(-5, 10, Unweighted, 1); err == nil {
		t.Fatal("accepted negative vertices")
	}
}

func TestBFSEndToEnd(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	res, rep, err := eng.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level[0] != 0 || res.Parent[0] != 0 {
		t.Fatalf("source level/parent wrong: %d/%d", res.Level[0], res.Parent[0])
	}
	reached := 0
	for _, l := range res.Level {
		if l >= 0 {
			reached++
		}
	}
	if reached < 2 {
		t.Fatalf("BFS reached only %d vertices", reached)
	}
	if rep.Algorithm != "BFS" || rep.TotalCycles <= 0 || rep.EnergyJ <= 0 {
		t.Fatalf("report wrong: %+v", rep)
	}
	if rep.Seconds != float64(rep.TotalCycles)/1e9 {
		t.Fatal("Seconds must be cycles at 1 GHz")
	}
}

func TestSSSPEndToEnd(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	dist, rep, err := eng.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Fatalf("source distance %g", dist[0])
	}
	// BFS-reachable set must equal SSSP-reachable set.
	bres, _, err := eng.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range dist {
		if (bres.Level[v] >= 0) != (dist[v] < float32(math.Inf(1))) {
			t.Fatalf("vertex %d: BFS and SSSP disagree on reachability", v)
		}
	}
	if len(rep.Iterations) < 2 {
		t.Fatal("suspiciously fast SSSP")
	}
}

func TestPageRankEndToEnd(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	pr, rep, err := eng.PageRank(5, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for v, x := range pr {
		if x <= 0 || math.IsNaN(float64(x)) {
			t.Fatalf("vertex %d rank %g", v, x)
		}
	}
	if len(rep.Iterations) != 5 {
		t.Fatalf("%d iterations", len(rep.Iterations))
	}
	for _, it := range rep.Iterations {
		if it.Software != "IP" {
			t.Fatal("PageRank must run IP (dense frontier)")
		}
	}
}

func TestCFEndToEnd(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	v, _, err := eng.CF(5, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatalf("vertex %d factor %g", i, x)
		}
	}
}

func TestSpMVEndToEnd(t *testing.T) {
	g, err := NewGraph(3, []Edge{
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 0, Dst: 2, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 1, PEsPerTile: 2})
	if err != nil {
		t.Fatal(err)
	}
	y, _, err := eng.SpMV([]int32{0, 1}, []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// y[1] = 2·x[0] = 2; y[2] = 5·x[0] + 3·x[1] = 8.
	if y[0] != 0 || y[1] != 2 || y[2] != 8 {
		t.Fatalf("SpMV = %v, want [0 2 8]", y)
	}
	if _, _, err := eng.SpMV([]int32{9}, []float32{1}); err == nil {
		t.Fatal("accepted out-of-range index")
	}
}

func TestForcedConfigurationOptions(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g, WithSoftware(OuterProduct), WithHardware(ForcePS))
	_, rep, err := eng.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range rep.Iterations {
		if it.Software != "OP" || it.Hardware != "PS" {
			t.Fatalf("iteration %d ran %s/%s, want OP/PS", it.Iter, it.Software, it.Hardware)
		}
	}
}

func TestDecideExposed(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	swDense, hwDense := eng.Decide(400)
	if swDense != "IP" {
		t.Fatalf("dense decision %s/%s", swDense, hwDense)
	}
	swSparse, hwSparse := eng.Decide(1)
	if swSparse != "OP" {
		t.Fatalf("sparse decision %s/%s", swSparse, hwSparse)
	}
}

func TestReportRendering(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	_, rep, err := eng.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "SSSP") || !strings.Contains(sum, "2x4") {
		t.Fatalf("Summary missing context: %q", sum)
	}
	tr := rep.Trace()
	if !strings.Contains(tr, "iter") || len(strings.Split(tr, "\n")) < len(rep.Iterations) {
		t.Fatalf("Trace malformed:\n%s", tr)
	}
}

func TestMaxIterationsOption(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g, WithMaxIterations(2))
	_, rep, err := eng.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) > 2 {
		t.Fatalf("ran %d iterations, cap was 2", len(rep.Iterations))
	}
}

func TestWithoutBalancingStillCorrect(t *testing.T) {
	g := testGraph(t)
	a := testEngine(t, g)
	b := testEngine(t, g, WithoutBalancing())
	da, _, err := a.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := b.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range da {
		if da[v] != db[v] {
			t.Fatalf("balancing changed results at vertex %d: %g vs %g", v, da[v], db[v])
		}
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	g := testGraph(t)
	run := func() int64 {
		eng := testEngine(t, g)
		_, rep, err := eng.BFS(0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TotalCycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestWithThresholds(t *testing.T) {
	g := testGraph(t)
	// An absurdly high CVD coefficient forces OP at every density.
	eng := testEngine(t, g, WithThresholds(Thresholds{CVDCoefficient: 100}))
	if sw, _ := eng.Decide(g.NumVertices()); sw != "OP" {
		t.Fatalf("CVD override ignored: got %s for a full frontier", sw)
	}
	// A zero-value Thresholds keeps the defaults.
	def := testEngine(t, g, WithThresholds(Thresholds{}))
	if sw, _ := def.Decide(g.NumVertices()); sw != "IP" {
		t.Fatal("zero thresholds changed the defaults")
	}
}

func TestSystemString(t *testing.T) {
	if s := (System{Tiles: 16, PEsPerTile: 16}).String(); s != "16x16" {
		t.Fatalf("System.String() = %q", s)
	}
}

func TestEdgesAccessor(t *testing.T) {
	in := []Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 2, Weight: 3}}
	g, err := NewGraph(3, in)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Edges()
	if len(out) != 2 {
		t.Fatalf("edges %d", len(out))
	}
	found := 0
	for _, e := range out {
		for _, w := range in {
			if e == w {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("edges round trip lost data: %v", out)
	}
}

func TestDensityTrace(t *testing.T) {
	g := testGraph(t)
	eng := testEngine(t, g)
	_, rep, err := eng.SSSP(0)
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.DensityTrace()
	if !strings.Contains(tr, "#") || !strings.Contains(tr, "sw") {
		t.Fatalf("trace malformed:\n%s", tr)
	}
	// One column per iteration in the sw row.
	for _, line := range strings.Split(tr, "\n") {
		if strings.Contains(line, "sw  ") {
			cols := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "sw"))
			if len(cols) != len(rep.Iterations) {
				t.Fatalf("sw row %q has %d cols for %d iterations", cols, len(cols), len(rep.Iterations))
			}
		}
	}
	empty := &Report{}
	if !strings.Contains(empty.DensityTrace(), "no iterations") {
		t.Fatal("empty report trace wrong")
	}
}

func TestBetweennessEndToEnd(t *testing.T) {
	// Path 0->1->2->3: interior vertices carry all shortest paths.
	g, err := NewGraph(4, []Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 1, PEsPerTile: 2})
	if err != nil {
		t.Fatal(err)
	}
	bc, rep, err := eng.Betweenness(0)
	if err != nil {
		t.Fatal(err)
	}
	// delta[2] = 1 (path to 3); delta[1] = 1·(1+1) = 2.
	want := []float32{0, 2, 1, 0}
	for v := range want {
		if bc[v] != want[v] {
			t.Fatalf("BC = %v, want %v", bc, want)
		}
	}
	if rep.Algorithm != "BC" || len(rep.Iterations) == 0 {
		t.Fatalf("report %+v", rep)
	}
	if _, _, err := eng.Betweenness(99); err == nil {
		t.Fatal("accepted bad source")
	}
}
