GO ?= go

.PHONY: all build vet lint test race regress chaos chaos-restart chaos-failover fuzz check bench bench-backends bench-batch bench-checkpoint bench-formats bench-repl bench-service clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is vet plus a failing gofmt check (gofmt -l output means a file
# is unformatted; fail loudly instead of silently listing it), plus
# staticcheck when the binary is on PATH — the container image does not
# ship it, so its absence is a skip, not a failure.
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then 		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then 		staticcheck ./...; 	else 		echo "staticcheck not installed; skipping"; 	fi

test:
	$(GO) test ./...

race: regress chaos chaos-restart chaos-failover fuzz bench-backends bench-batch bench-formats bench-service
	$(GO) test -race -short ./...

# regress pins the stats-accounting fixes under the race detector: the
# stream-buffer retirement bound (and its unchanged timings) and the
# lock-free metrics histograms — plus the execution-backend seam: sim
# timings byte-identical to pre-refactor, and the goroutine-parallel
# native backend producing bit-identical results under -race.
regress:
	$(GO) test -race -count=1 -run 'TestLoadStreamRetirementBoundsReadyMap|TestLoadStreamTimingsUnchangedByRetirementFix|TestHBMWriteAccounting|TestDirtyEvictionsReportWriteLines' ./internal/sim
	$(GO) test -race -count=1 -run 'TestObserveJobConcurrentExact|TestWritePrometheusDuringObservations|TestTraceEndpointMatchesReport|TestHTTPLatencyHistograms' ./internal/service
	$(GO) test -race -count=1 -run 'TestSimBackendTimingsPinned' ./internal/runtime
	$(GO) test -race -count=1 -run 'TestBackendEquivalence|TestBackendsMatchBaselineSpMV' .
	$(GO) test -race -count=1 -run 'TestBatchEquivalence|TestBatchPPRLanesDiffer' .
	$(GO) test -race -count=1 -run 'TestFormatEquivalence' .

# chaos runs the fault-injection suite under the race detector: hundreds
# of jobs against an armed injector (panics, transient errors, latency),
# the graceful-drain paths, and the overload suite (CoDel shedding,
# tenant fairness/eviction, retry budget, brownout, and a four-tenant
# flood with one hostile tenant under injected faults).
chaos:
	$(GO) test -race -run 'TestChaos|TestDrain|TestOverload' -count=1 ./internal/service

# chaos-restart is the durability end-to-end: a real cosparsed child is
# SIGKILLed mid-PageRank and restarted on the same data dir; the
# resumed job must finish bit-identical to an uninterrupted run on both
# backends. The child binary is built with -race to match the test.
chaos-restart:
	$(GO) test -race -run 'TestChaosRestart' -count=1 -timeout 300s ./cmd/cosparsed

# chaos-failover is the replication end-to-end: a leader cosparsed is
# SIGKILLed with >= 8 mixed-algo jobs in flight (two mid-checkpoint,
# a fused batch pair queued) while a follower tails its journal; the
# follower is promoted and every job must finish there bit-identical
# to an uninterrupted run, on both backends.
chaos-failover:
	$(GO) test -race -run 'TestChaosFailover' -count=1 -timeout 300s ./cmd/cosparsed

# fuzz gives each parser fuzz target a short budget; crashes land in
# internal/gen/testdata/fuzz for triage.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseSNAP -fuzztime=10s ./internal/gen
	$(GO) test -run='^$$' -fuzz=FuzzParseMatrixMarket -fuzztime=10s ./internal/gen
	$(GO) test -run='^$$' -fuzz=FuzzDVCSRDecode -fuzztime=10s ./internal/matrix
	$(GO) test -run='^$$' -fuzz=FuzzBBCSRDecode -fuzztime=10s ./internal/matrix
	$(GO) test -run='^$$' -fuzz=FuzzDVCCSCDecode -fuzztime=10s ./internal/matrix
	$(GO) test -run='^$$' -fuzz=FuzzScanSegment -fuzztime=10s ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCheckpoint -fuzztime=10s ./internal/runtime
	$(GO) test -run='^$$' -fuzz=FuzzJobSubmitBody -fuzztime=10s ./internal/service
	$(GO) test -run='^$$' -fuzz=FuzzBatchSubmitBody -fuzztime=10s ./internal/service
	$(GO) test -run='^$$' -fuzz=FuzzReplFrame -fuzztime=10s ./internal/repl

# check is the tier-1 gate: everything must pass before a commit.
check: lint build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-backends times the same PageRank run through the sim and native
# execution backends on a scale-16 power-law graph and writes
# BENCH_backends.json; it fails if native is not >= 10x faster.
# GOMAXPROCS is pinned to 1 so the headline numbers are
# scheduling-stable; the test adds a full-parallelism native leg
# internally.
bench-backends:
	GOMAXPROCS=1 BENCH_BACKENDS=1 $(GO) test -count=1 -run TestBenchBackends -v .

# bench-batch measures multi-source job fusion end to end: 64
# concurrent clients submit the same-graph native workload to a batched
# and an unbatched service; results land in BENCH_batch.json and the
# run fails if fusion is not >= 2x jobs/sec. Part of the race tier, but
# the benchmark binary itself is built without -race: tsan's shadow
# memory skews the fused/solo ratio into noise, and the coalescer's
# rendezvous is already race-tested by regress and the chaos suites.
bench-batch:
	BENCH_BATCH=1 $(GO) test -count=1 -run TestBenchBatch -v -timeout 600s ./internal/service

# bench-checkpoint measures the wall-clock cost of checkpointing native
# PageRank at the service's default interval (snapshots through the
# real fsync'd store) and writes internal/runtime/BENCH_checkpoint.json;
# it fails if the overhead exceeds the 5% durability budget.
bench-checkpoint:
	BENCH_CHECKPOINT=1 $(GO) test -count=1 -run TestBenchCheckpointOverhead -v ./internal/runtime

# bench-formats compares the CSR baseline with delta-varint (dvcsr)
# and bitmap-block (bbcsr) compressed storage on a scale-16 power-law
# graph: resident bytes, native PageRank wall-clock through the
# decode-at-build seam, how many graphs one memory budget admits, and
# a decode-PE sim leg recording per-format decode cycles vs HBM lines
# saved. Results land in BENCH_formats.json; the run fails under 1.5x
# dvcsr compression, over 1.3x native slowdown, under 1.5x admitted
# graphs, if decode-off sim cycles drift from the CSR baseline, or if
# a >= 1.25x-compressible format fails to cut HBM matrix traffic.
bench-formats:
	BENCH_FORMATS=1 $(GO) test -count=1 -run TestBenchFormats -v .

# bench-service is the overload-robustness gate: the cosparse-bench
# harness self-hosts a service, finds its saturation knee closed-loop,
# then drives it open-loop at 0.5x/1x/2x the knee. Results land in
# BENCH_service.json at the repo root; the run fails if goodput at 2x
# overload retains less than 80% of knee goodput, or if nothing is
# shed at 2x (admission control not engaging). Built without -race for
# the same reason as bench-batch: the ratio is the product.
bench-service:
	BENCH_SERVICE=1 $(GO) test -count=1 -run TestBenchService -v -timeout 600s ./cmd/cosparse-bench

# bench-repl measures what the semisync follower-ack costs a submit:
# 16 concurrent clients time the submit POST against a leader with a
# caught-up local follower in async and semisync modes; results land
# in BENCH_repl.json and the run fails if the semisync p50 is >= 2x
# the async p50 on localhost.
bench-repl:
	BENCH_REPL=1 $(GO) test -count=1 -run TestBenchRepl -v -timeout 600s ./internal/service

clean:
	$(GO) clean ./...
