GO ?= go

.PHONY: all build vet test race chaos fuzz check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: chaos fuzz
	$(GO) test -race -short ./...

# chaos runs the fault-injection suite under the race detector: hundreds
# of jobs against an armed injector (panics, transient errors, latency)
# plus the graceful-drain paths.
chaos:
	$(GO) test -race -run 'TestChaos|TestDrain' -count=1 ./internal/service

# fuzz gives each parser fuzz target a short budget; crashes land in
# internal/gen/testdata/fuzz for triage.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseSNAP -fuzztime=10s ./internal/gen
	$(GO) test -run='^$$' -fuzz=FuzzParseMatrixMarket -fuzztime=10s ./internal/gen

# check is the tier-1 gate: everything must pass before a commit.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
