GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# check is the tier-1 gate: everything must pass before a commit.
check: vet build race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
