package cosparse_test

import (
	"context"
	"errors"
	"testing"

	"cosparse"
)

// TestWithIterationHook checks the public option stops a run at the
// iteration boundary the hook fires on and surfaces the partial report.
func TestWithIterationHook(t *testing.T) {
	g, err := cosparse.GeneratePowerLaw(500, 2500, cosparse.Unweighted, 42)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("probe failed")
	eng, err := cosparse.New(g, cosparse.System{Tiles: 2, PEsPerTile: 4},
		cosparse.WithIterationHook(func(iter int) error {
			if iter == 3 {
				return boom
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := eng.PageRankContext(context.Background(), 20, 0.15)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped hook error", err)
	}
	if rep == nil || len(rep.Iterations) != 3 {
		t.Fatalf("partial report has %d iterations, want 3", len(rep.Iterations))
	}
}
