package cosparse

import (
	"context"
	"testing"
)

// TestCheckpointFacadeRoundTrip exercises the public checkpoint API:
// a checkpointed PageRank run, snapshots round-tripped through the
// binary wire form, and a resume that reproduces the uninterrupted
// run bit-for-bit — the same contract the service relies on, through
// the facade types.
func TestCheckpointFacadeRoundTrip(t *testing.T) {
	g, err := GeneratePowerLaw(300, 1500, Unweighted, 3)
	if err != nil {
		t.Fatal(err)
	}
	newEngine := func() *Engine {
		eng, err := New(g, System{Tiles: 2, PEsPerTile: 4})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	ref, refRep, err := newEngine().PageRankContext(context.Background(), 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}

	var frames [][]byte
	ctx := ContextWithCheckpoint(context.Background(), &CheckpointConfig{
		Every: 3,
		Sink: func(cp *Checkpoint) error {
			if cp.Algorithm() != "PR" {
				t.Errorf("snapshot algorithm = %q, want PR", cp.Algorithm())
			}
			if cp.Vertices() != 300 {
				t.Errorf("snapshot vertices = %d, want 300", cp.Vertices())
			}
			frames = append(frames, cp.Encode())
			return nil
		},
	})
	ck, ckRep, err := newEngine().PageRankContext(ctx, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no snapshots taken")
	}
	if ckRep.TotalCycles != refRep.TotalCycles {
		t.Fatalf("checkpointing changed timings: %d vs %d", ckRep.TotalCycles, refRep.TotalCycles)
	}
	for i := range ref {
		if ck[i] != ref[i] {
			t.Fatalf("checkpointing changed values at %d: %v vs %v", i, ck[i], ref[i])
		}
	}

	cp, err := DecodeCheckpoint(frames[len(frames)-1])
	if err != nil {
		t.Fatal(err)
	}
	rctx := ContextWithCheckpoint(context.Background(),
		&CheckpointConfig{Resume: cp})
	res, resRep, err := newEngine().PageRankContext(rctx, 10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !resRep.Resumed || resRep.ResumedIteration != cp.Iteration() {
		t.Fatalf("resumed report: Resumed=%v ResumedIteration=%d, want true/%d",
			resRep.Resumed, resRep.ResumedIteration, cp.Iteration())
	}
	if resRep.TotalCycles != refRep.TotalCycles || resRep.EnergyJ != refRep.EnergyJ {
		t.Fatalf("resumed totals diverge: cycles %d vs %d, energy %v vs %v",
			resRep.TotalCycles, refRep.TotalCycles, resRep.EnergyJ, refRep.EnergyJ)
	}
	for i := range ref {
		if res[i] != ref[i] {
			t.Fatalf("resumed value[%d] = %v, want %v (bit-identical)", i, res[i], ref[i])
		}
	}

	if _, err := DecodeCheckpoint([]byte("garbage")); err == nil {
		t.Error("DecodeCheckpoint accepted garbage")
	}
}
