package cosparse

import (
	"context"
	"errors"
	"math"
	"testing"
)

// Fused-vs-solo equivalence: a k-lane batched run must produce, for
// every lane, exactly the bits a solo run of the same job produces —
// on both backends. The fused kernels keep per-lane accumulator state
// and per-lane flush schedules, so each lane's float32 operation order
// is the solo order; these tests hold that contract end to end through
// the runtime batch driver (convergence, decision tree, merges,
// per-lane detachment).

// batchSources deliberately includes a duplicate (two users asking for
// the same source must each get their own lane and result).
var batchSources = []int32{0, 3, 7, 3, 11}

func batchEngine(t *testing.T, backend Backend) *Engine {
	t.Helper()
	g, err := GeneratePowerLaw(1200, 15000, Weighted, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(g, System{Tiles: 4, PEsPerTile: 4}, WithBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func eachBackend(t *testing.T, fn func(t *testing.T, backend Backend)) {
	for _, be := range []struct {
		name    string
		backend Backend
	}{{"sim", SimBackend}, {"native", NativeBackend}} {
		t.Run(be.name, func(t *testing.T) { fn(t, be.backend) })
	}
}

// bitsEqual compares float32 slices bit-for-bit (Inf==Inf, and any
// rounding difference is a failure).
func bitsEqual(t *testing.T, what string, lane int, fused, solo []float32) {
	t.Helper()
	if len(fused) != len(solo) {
		t.Fatalf("%s lane %d: fused len %d, solo len %d", what, lane, len(fused), len(solo))
	}
	for v := range fused {
		if math.Float32bits(fused[v]) != math.Float32bits(solo[v]) {
			t.Fatalf("%s lane %d vertex %d: fused %g (%#x), solo %g (%#x)",
				what, lane, v, fused[v], math.Float32bits(fused[v]), solo[v], math.Float32bits(solo[v]))
		}
	}
}

func TestBatchEquivalenceBFS(t *testing.T) {
	eachBackend(t, func(t *testing.T, backend Backend) {
		eng := batchEngine(t, backend)
		fused, reps, errs := eng.BFSBatch(nil, batchSources)
		for i, src := range batchSources {
			if errs[i] != nil {
				t.Fatalf("lane %d: %v", i, errs[i])
			}
			if reps[i] == nil || reps[i].TotalIterations == 0 {
				t.Fatalf("lane %d: missing per-lane report", i)
			}
			solo, _, err := eng.BFS(src)
			if err != nil {
				t.Fatal(err)
			}
			for v := range solo.Parent {
				if fused[i].Parent[v] != solo.Parent[v] || fused[i].Level[v] != solo.Level[v] {
					t.Fatalf("lane %d vertex %d: fused parent/level %d/%d, solo %d/%d",
						i, v, fused[i].Parent[v], fused[i].Level[v], solo.Parent[v], solo.Level[v])
				}
			}
		}
	})
}

func TestBatchEquivalenceSSSP(t *testing.T) {
	eachBackend(t, func(t *testing.T, backend Backend) {
		eng := batchEngine(t, backend)
		fused, _, errs := eng.SSSPBatch(nil, batchSources)
		for i, src := range batchSources {
			if errs[i] != nil {
				t.Fatalf("lane %d: %v", i, errs[i])
			}
			solo, _, err := eng.SSSP(src)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "sssp", i, fused[i], solo)
		}
	})
}

func TestBatchEquivalencePPR(t *testing.T) {
	eachBackend(t, func(t *testing.T, backend Backend) {
		eng := batchEngine(t, backend)
		fused, _, errs := eng.PersonalizedPageRankBatch(nil, batchSources, 10, 0.15)
		for i, src := range batchSources {
			if errs[i] != nil {
				t.Fatalf("lane %d: %v", i, errs[i])
			}
			solo, _, err := eng.PersonalizedPageRank(src, 10, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "ppr", i, fused[i], solo)
		}
	})
}

// A lane whose seed differs must get a different distribution — guard
// against lanes accidentally sharing vectors.
func TestBatchPPRLanesDiffer(t *testing.T) {
	eng := batchEngine(t, NativeBackend)
	fused, _, errs := eng.PersonalizedPageRankBatch(nil, []int32{0, 3}, 10, 0.15)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
	}
	same := true
	for v := range fused[0] {
		if fused[0][v] != fused[1][v] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("PPR lanes with different seeds produced identical vectors")
	}
}

// A lane cancelled mid-batch fails alone with a context error; the
// surviving lanes still finish bit-identical to solo runs.
func TestBatchEquivalenceCancelledLane(t *testing.T) {
	eachBackend(t, func(t *testing.T, backend Backend) {
		g, err := GeneratePowerLaw(1200, 15000, Weighted, 9)
		if err != nil {
			t.Fatal(err)
		}
		victimCtx, cancel := context.WithCancel(context.Background())
		defer cancel()
		eng, err := New(g, System{Tiles: 4, PEsPerTile: 4}, WithBackend(backend),
			WithIterationHook(func(iter int) error {
				if iter == 2 {
					cancel()
				}
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		seeds := []int32{0, 3, 7}
		victim := 1
		ctxs := []context.Context{nil, victimCtx, nil}
		fused, reps, errs := eng.PersonalizedPageRankBatch(ctxs, seeds, 10, 0.15)

		if errs[victim] == nil {
			t.Fatal("cancelled lane reported no error")
		}
		if !errors.Is(errs[victim], context.Canceled) {
			t.Fatalf("cancelled lane error = %v, want context.Canceled", errs[victim])
		}
		if fused[victim] != nil {
			t.Fatal("cancelled lane still delivered a result")
		}
		if reps[victim] == nil || reps[victim].TotalIterations >= 10 {
			t.Fatalf("cancelled lane report = %+v, want a partial trace", reps[victim])
		}

		soloEng := batchEngine(t, backend)
		for _, i := range []int{0, 2} {
			if errs[i] != nil {
				t.Fatalf("surviving lane %d: %v", i, errs[i])
			}
			solo, _, err := soloEng.PersonalizedPageRank(seeds[i], 10, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "ppr-survivor", i, fused[i], solo)
		}
	})
}
