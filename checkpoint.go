package cosparse

import (
	"context"

	"cosparse/internal/runtime"
)

// Checkpoint is an opaque snapshot of a run's mid-flight algorithm
// state: the per-vertex value array, the frontier, the decision
// machinery's convergence state, and the report accumulators. A
// checkpoint taken every K iterations (see CheckpointConfig) lets an
// interrupted run resume bit-identically — the resumed run's results,
// cycle totals and decision trace match an uninterrupted one.
//
// The wire form (Encode/DecodeCheckpoint) is a versioned, CRC-guarded
// binary frame; decoding hostile input returns an error, never panics.
type Checkpoint struct {
	cp *runtime.Checkpoint
}

// Algorithm names the run the checkpoint belongs to ("BFS", "SSSP",
// "PR", "PR(tol)", "CF", "BC", ...). Resume validates it against the
// algorithm being resumed.
func (c *Checkpoint) Algorithm() string { return c.cp.Algo }

// Iteration is the next iteration the resumed run will execute.
func (c *Checkpoint) Iteration() int { return int(c.cp.Iter) }

// Vertices is the vertex count of the graph the checkpoint was taken
// on; resume validates it against the engine's graph.
func (c *Checkpoint) Vertices() int { return int(c.cp.N) }

// Encode serializes the checkpoint to its versioned binary form.
func (c *Checkpoint) Encode() []byte { return runtime.EncodeCheckpoint(c.cp) }

// DecodeCheckpoint parses a checkpoint image produced by Encode,
// validating magic, version, length framing and CRC. Corrupt or
// truncated input yields an error; the decoder never panics.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	cp, err := runtime.DecodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{cp: cp}, nil
}

// CheckpointConfig arms iteration checkpointing for context-scoped
// runs (the *Context algorithm entry points). It travels on the
// context rather than the Engine because engines are shared and cached
// per graph; checkpointing is a property of one run.
type CheckpointConfig struct {
	// Every takes a snapshot after each Every iterations (or SpMV
	// passes, for phase-structured algorithms like BC). Zero disables
	// snapshotting; Resume still works.
	Every int
	// Sink receives each snapshot. An error from Sink aborts the run —
	// callers that prefer to keep computing on persistence failure
	// should swallow the error themselves.
	Sink func(*Checkpoint) error
	// Resume, when non-nil, restarts the run from the checkpoint
	// instead of from the initial state. The checkpoint's algorithm
	// and vertex count must match or the run fails immediately.
	Resume *Checkpoint
}

// ContextWithCheckpoint returns a context that carries cfg to any
// *Context algorithm call made with it. Passing a nil cfg strips any
// inherited checkpoint configuration (useful when composing runs).
func ContextWithCheckpoint(ctx context.Context, cfg *CheckpointConfig) context.Context {
	if cfg == nil {
		return runtime.ContextWithCheckpoint(ctx, nil)
	}
	rc := &runtime.CheckpointConfig{Every: cfg.Every}
	if cfg.Sink != nil {
		sink := cfg.Sink
		rc.Sink = func(cp *runtime.Checkpoint) error {
			return sink(&Checkpoint{cp: cp})
		}
	}
	if cfg.Resume != nil {
		rc.Resume = cfg.Resume.cp
	}
	return runtime.ContextWithCheckpoint(ctx, rc)
}
