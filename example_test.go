package cosparse_test

import (
	"fmt"

	"cosparse"
)

// Build a tiny graph by hand and run one SpMV through the
// reconfigurable path.
func ExampleEngine_SpMV() {
	g, _ := cosparse.NewGraph(3, []cosparse.Edge{
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 0, Dst: 2, Weight: 5},
	})
	eng, _ := cosparse.New(g, cosparse.System{Tiles: 1, PEsPerTile: 2})
	y, _, _ := eng.SpMV([]int32{0, 1}, []float32{1, 1})
	fmt.Println(y)
	// Output: [0 2 8]
}

// The decision tree picks OP for sparse frontiers and IP for dense ones.
func ExampleEngine_Decide() {
	g, _ := cosparse.GenerateUniform(10_000, 100_000, cosparse.Unweighted, 1)
	eng, _ := cosparse.New(g, cosparse.System{Tiles: 4, PEsPerTile: 8})

	sw, _ := eng.Decide(10) // 0.1% of vertices active
	fmt.Println("sparse frontier:", sw)
	sw, _ = eng.Decide(5_000) // 50% active
	fmt.Println("dense frontier:", sw)
	// Output:
	// sparse frontier: OP
	// dense frontier: IP
}

// BFS returns parents and levels; unreachable vertices get -1.
func ExampleEngine_BFS() {
	// A path 0 -> 1 -> 2 and an isolated vertex 3.
	g, _ := cosparse.NewGraph(4, []cosparse.Edge{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 2},
	})
	eng, _ := cosparse.New(g, cosparse.System{Tiles: 1, PEsPerTile: 2})
	res, _, _ := eng.BFS(0)
	fmt.Println("levels:", res.Level)
	// Output: levels: [0 1 2 -1]
}

// A custom algorithm needs only its Table I operators (§III-D): here,
// counting reachable vertices via an OR-style reachability semiring.
func ExampleOperators() {
	g, _ := cosparse.NewGraph(4, []cosparse.Edge{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 2},
		{Src: 3, Dst: 0},
	})
	eng, _ := cosparse.New(g, cosparse.System{Tiles: 1, PEsPerTile: 2})

	ops := cosparse.Operators{
		Name:      "reach",
		Identity:  0,
		MatrixOp:  func(e cosparse.EdgeCtx) float32 { return 1 }, // reached
		Reduce:    func(a, b float32) float32 { return max32(a, b) },
		Improving: func(next, cur float32) bool { return next > cur },
		OnceOnly:  true,
	}
	initial := make([]float32, 4)
	initial[0] = 1
	vals, _, _ := eng.Run(ops, initial, []int32{0}, 0)

	reached := 0
	for _, v := range vals {
		if v > 0 {
			reached++
		}
	}
	fmt.Println("reachable from 0 (incl. itself):", reached)
	// Output: reachable from 0 (incl. itself): 3
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
